//! One shard: a zcache behind a bounded FIFO queue, with panic
//! isolation, cold rebuild, and adaptive walk-budget degradation.
//!
//! The shard runs in virtual time. Each [`Shard::step`] call models one
//! tick: the shard spends up to its service budget (in *service units*
//! — tag reads, roughly) draining its queue, and emits replies. Faults
//! are externally imposed flags ([`Shard::set_stalled`] and friends);
//! the shard itself only knows how to break, not when.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use zcache_core::{
    AdaptiveConfig, ArrayKind, CacheBuilder, DynCache, FullLru, PanicFailure, ShadowDuel,
};

/// Geometry and service parameters for one shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Cache frames in this shard's array.
    pub lines: u64,
    /// Ways of the shard's zcache.
    pub ways: u32,
    /// Walk levels of the shard's zcache.
    pub levels: u32,
    /// Seed for hashes and randomized structures.
    pub seed: u64,
    /// Bounded request-queue capacity.
    pub queue_cap: usize,
    /// Service units available per tick (a hit costs `ways` units, a
    /// miss `ways` plus the walk's tag reads — so shrinking the walk
    /// budget genuinely raises throughput).
    pub units_per_tick: u64,
    /// Queue depth at which overload control forces the minimum walk
    /// budget. Restores once depth falls to a quarter of this.
    pub queue_watermark: usize,
    /// Ticks between a crash and the cold rebuild coming online.
    pub rebuild_delay: u64,
    /// Whether a crashed shard rebuilds at all (mutation knob: disable
    /// and poison schedules must fail the soak).
    pub rebuild_enabled: bool,
}

/// A request as the shard sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Client-assigned operation id.
    pub op_id: u64,
    /// Key (used directly as the cache line address).
    pub key: u64,
    /// Whether the operation writes.
    pub write: bool,
}

/// How a request finished at the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyStatus {
    /// Served; `hit` is the cache outcome.
    Served {
        /// Whether the lookup hit.
        hit: bool,
    },
    /// The shard crashed with this request queued or in service.
    Crashed,
}

/// A reply emitted by [`Shard::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// The operation this reply answers.
    pub op_id: u64,
    /// Outcome.
    pub status: ReplyStatus,
}

/// Synchronous verdict of [`Shard::try_enqueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Queued.
    Accepted,
    /// Bounced: the (possibly fault-clamped) queue is full.
    QueueFull,
    /// Bounced: the shard has no array (crashed, possibly rebuilding).
    Down,
}

/// Per-shard event counters, folded into the service totals at the end
/// of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Panics caught and converted to typed failures.
    pub crashes: u64,
    /// Cold rebuilds completed.
    pub rebuilds: u64,
    /// Walk-budget decreases applied.
    pub budget_reductions: u64,
    /// Walk-budget increases applied.
    pub budget_restorations: u64,
}

/// The shard itself. See the module docs for the execution model.
pub struct Shard {
    cfg: ShardConfig,
    /// `None` while crashed.
    cache: Option<DynCache>,
    queue: VecDeque<Request>,
    duel: ShadowDuel<FullLru>,
    /// Walk budget currently applied to the array.
    budget: u32,
    /// Overload control has pinned the budget to the minimum tier.
    forced_min: bool,
    /// The most recent caught crash, for reporting.
    pub last_failure: Option<PanicFailure>,
    /// Event counters.
    pub counters: ShardCounters,
    // Fault state, reasserted by the service every tick.
    stalled: bool,
    slowdown: u32,
    clamp: Option<u32>,
    poison_armed: bool,
    rebuild_at: Option<u64>,
}

impl Shard {
    /// Builds a shard with a warm (empty but live) cache.
    pub fn new(cfg: ShardConfig) -> Self {
        let duel = ShadowDuel::for_geometry(
            cfg.lines,
            cfg.ways,
            cfg.levels,
            FullLru::new,
            AdaptiveConfig::default(),
        );
        let budget = duel.budget();
        let mut shard = Self {
            cfg,
            cache: Some(Self::build_cache(&cfg)),
            queue: VecDeque::new(),
            duel,
            budget,
            forced_min: false,
            last_failure: None,
            counters: ShardCounters::default(),
            stalled: false,
            slowdown: 1,
            clamp: None,
            poison_armed: false,
            rebuild_at: None,
        };
        shard.apply_budget_to_cache();
        shard
    }

    fn build_cache(cfg: &ShardConfig) -> DynCache {
        CacheBuilder::new()
            .lines(cfg.lines)
            .ways(cfg.ways)
            .array(ArrayKind::ZCache { levels: cfg.levels })
            .seed(cfg.seed)
            .build()
    }

    fn apply_budget_to_cache(&mut self) {
        if let Some(cache) = &mut self.cache {
            cache.array_mut().set_max_candidates(self.budget);
        }
    }

    /// Imposes or clears a stall for the current tick.
    pub fn set_stalled(&mut self, stalled: bool) {
        self.stalled = stalled;
    }

    /// Imposes a capacity divisor (1 = full speed).
    pub fn set_slowdown(&mut self, factor: u32) {
        self.slowdown = factor.max(1);
    }

    /// Clamps the queue capacity (`None` = the configured capacity).
    pub fn set_queue_clamp(&mut self, cap: Option<u32>) {
        self.clamp = cap;
    }

    /// Arms a poison: the next request processed panics inside the
    /// cache operation. No-op while the shard is down.
    pub fn arm_poison(&mut self) {
        if self.cache.is_some() {
            self.poison_armed = true;
        }
    }

    /// Whether the shard currently has a live array.
    pub fn is_up(&self) -> bool {
        self.cache.is_some()
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Walk budget currently applied.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Cache-state digest (0 while down) — the transparency invariant
    /// compares these between a chaos run and its fault-free twin.
    pub fn digest(&self) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.state_digest())
    }

    /// Offers a request. Rejections are synchronous; the client decides
    /// whether to retry.
    pub fn try_enqueue(&mut self, req: Request) -> EnqueueOutcome {
        if self.cache.is_none() {
            return EnqueueOutcome::Down;
        }
        let cap = self
            .clamp
            .map_or(self.cfg.queue_cap, |c| (c as usize).min(self.cfg.queue_cap));
        if self.queue.len() >= cap {
            return EnqueueOutcome::QueueFull;
        }
        self.queue.push_back(req);
        EnqueueOutcome::Accepted
    }

    /// Re-evaluates the walk budget: overload forces the minimum tier
    /// (with hysteresis), otherwise the shadow duel's recommendation
    /// stands.
    fn update_budget(&mut self) {
        let (min, _, _) = self.duel.tiers();
        if !self.forced_min && self.queue.len() >= self.cfg.queue_watermark {
            self.forced_min = true;
        } else if self.forced_min && self.queue.len() <= self.cfg.queue_watermark / 4 {
            self.forced_min = false;
        }
        let target = if self.forced_min {
            min
        } else {
            self.duel.budget()
        };
        if target != self.budget {
            if target < self.budget {
                self.counters.budget_reductions += 1;
            } else {
                self.counters.budget_restorations += 1;
            }
            self.budget = target;
            self.apply_budget_to_cache();
        }
    }

    /// Crashes the shard: converts the panic payload to a typed
    /// failure, drains the queue as [`ReplyStatus::Crashed`] replies,
    /// and schedules the cold rebuild (when enabled).
    fn crash(&mut self, now: u64, payload: Box<dyn std::any::Any + Send>, out: &mut Vec<Reply>) {
        self.last_failure = Some(PanicFailure::from_payload("shard executor", payload));
        self.counters.crashes += 1;
        self.cache = None;
        self.poison_armed = false;
        self.forced_min = false;
        for req in self.queue.drain(..) {
            out.push(Reply {
                op_id: req.op_id,
                status: ReplyStatus::Crashed,
            });
        }
        if self.cfg.rebuild_enabled {
            self.rebuild_at = Some(now + self.cfg.rebuild_delay);
        }
    }

    /// Runs one virtual tick: rebuild if due, then drain the queue
    /// until the tick's service units are spent. Replies are appended
    /// to `out`.
    pub fn step(&mut self, now: u64, out: &mut Vec<Reply>) {
        if self.cache.is_none() {
            if let Some(at) = self.rebuild_at {
                if now >= at {
                    self.cache = Some(Self::build_cache(&self.cfg));
                    self.rebuild_at = None;
                    self.counters.rebuilds += 1;
                    self.apply_budget_to_cache();
                }
            }
            if self.cache.is_none() {
                return;
            }
        }
        if self.stalled {
            return;
        }
        let units = self.cfg.units_per_tick / u64::from(self.slowdown);
        if units == 0 {
            return;
        }
        let mut spent = 0u64;
        // The op that crosses the budget boundary still completes, so a
        // single expensive miss can never wedge an underprovisioned
        // shard.
        while spent < units {
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            self.update_budget();
            if self.poison_armed {
                let cache = self.cache.as_mut().unwrap();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    quiet_panics(|| {
                        if req.write {
                            cache.access_write(req.key);
                        } else {
                            cache.access(req.key);
                        }
                        panic!("injected shard poison");
                    })
                }));
                match result {
                    Err(payload) => {
                        self.crash(now, payload, out);
                        out.push(Reply {
                            op_id: req.op_id,
                            status: ReplyStatus::Crashed,
                        });
                        return;
                    }
                    Ok(()) => unreachable!("poisoned request must panic"),
                }
            }
            let cache = self.cache.as_mut().unwrap();
            let outcome = if req.write {
                cache.access_write(req.key)
            } else {
                cache.access(req.key)
            };
            let cost = if outcome.hit {
                self.counters.hits += 1;
                u64::from(self.cfg.ways)
            } else {
                self.counters.misses += 1;
                u64::from(self.cfg.ways) + u64::from(cache.last_candidates().tag_reads)
            };
            spent += cost;
            self.duel.observe(req.key);
            out.push(Reply {
                op_id: req.op_id,
                status: ReplyStatus::Served { hit: outcome.hit },
            });
        }
    }
}

/// Runs `f` with the process panic hook silenced for *expected* panics
/// on this thread, so injected shard poisons don't spray backtraces
/// over test output. The hook is installed once and delegates to the
/// previous hook for every unexpected panic.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    use std::cell::Cell;
    use std::sync::Once;

    thread_local! {
        static EXPECTED: Cell<bool> = const { Cell::new(false) };
    }
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !EXPECTED.with(|e| e.get()) {
                prev(info);
            }
        }));
    });

    EXPECTED.with(|e| e.set(true));
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            EXPECTED.with(|e| e.set(false));
        }
    }
    let _reset = Reset;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ShardConfig {
        ShardConfig {
            lines: 256,
            ways: 4,
            levels: 3,
            seed: 7,
            queue_cap: 16,
            units_per_tick: 240,
            queue_watermark: 12,
            rebuild_delay: 10,
            rebuild_enabled: true,
        }
    }

    fn req(op_id: u64, key: u64) -> Request {
        Request {
            op_id,
            key,
            write: false,
        }
    }

    #[test]
    fn serves_and_counts() {
        let mut s = Shard::new(cfg());
        let mut out = Vec::new();
        assert_eq!(s.try_enqueue(req(1, 42)), EnqueueOutcome::Accepted);
        assert_eq!(s.try_enqueue(req(2, 42)), EnqueueOutcome::Accepted);
        s.step(0, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].status, ReplyStatus::Served { hit: false });
        assert_eq!(out[1].status, ReplyStatus::Served { hit: true });
        assert_eq!(s.counters.hits, 1);
        assert_eq!(s.counters.misses, 1);
    }

    #[test]
    fn queue_full_and_clamp() {
        let mut s = Shard::new(cfg());
        for i in 0..16 {
            assert_eq!(s.try_enqueue(req(i, i)), EnqueueOutcome::Accepted);
        }
        assert_eq!(s.try_enqueue(req(99, 99)), EnqueueOutcome::QueueFull);
        let mut out = Vec::new();
        s.step(0, &mut out);
        s.set_queue_clamp(Some(2));
        assert_eq!(s.try_enqueue(req(100, 1)), EnqueueOutcome::Accepted);
        assert_eq!(s.try_enqueue(req(101, 2)), EnqueueOutcome::Accepted);
        assert_eq!(s.try_enqueue(req(102, 3)), EnqueueOutcome::QueueFull);
    }

    #[test]
    fn stall_freezes_service() {
        let mut s = Shard::new(cfg());
        s.try_enqueue(req(1, 1));
        s.set_stalled(true);
        let mut out = Vec::new();
        s.step(0, &mut out);
        assert!(out.is_empty());
        s.set_stalled(false);
        s.step(1, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn poison_crashes_drains_and_rebuilds() {
        let mut s = Shard::new(cfg());
        s.try_enqueue(req(1, 1));
        s.try_enqueue(req(2, 2));
        s.arm_poison();
        let mut out = Vec::new();
        s.step(0, &mut out);
        // Both the poisoned request and the queued one come back Crashed.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.status == ReplyStatus::Crashed));
        assert!(!s.is_up());
        assert_eq!(s.counters.crashes, 1);
        let failure = s.last_failure.as_ref().unwrap();
        assert!(
            failure.message.contains("injected shard poison"),
            "{failure}"
        );
        assert_eq!(s.try_enqueue(req(3, 3)), EnqueueOutcome::Down);
        // Down until the rebuild deadline, then cold and serving again.
        out.clear();
        s.step(5, &mut out);
        assert!(!s.is_up());
        s.step(10, &mut out);
        assert!(s.is_up());
        assert_eq!(s.counters.rebuilds, 1);
        assert_eq!(s.try_enqueue(req(3, 3)), EnqueueOutcome::Accepted);
        s.step(11, &mut out);
        assert_eq!(
            out.last().unwrap().status,
            ReplyStatus::Served { hit: false }
        );
    }

    #[test]
    fn rebuild_disabled_stays_down() {
        let mut c = cfg();
        c.rebuild_enabled = false;
        let mut s = Shard::new(c);
        s.try_enqueue(req(1, 1));
        s.arm_poison();
        let mut out = Vec::new();
        s.step(0, &mut out);
        for t in 1..100 {
            s.step(t, &mut out);
        }
        assert!(!s.is_up());
        assert_eq!(s.counters.rebuilds, 0);
    }

    #[test]
    fn overload_forces_min_budget_then_restores() {
        let mut c = cfg();
        c.units_per_tick = 60;
        let mut s = Shard::new(c);
        let (min, _, max) = s.duel.tiers();
        assert_eq!(s.budget(), max);
        // Flood with distinct keys. While the array is empty misses are
        // cheap and the shard keeps up; once its 256 frames fill, every
        // miss pays a full walk, throughput collapses below the arrival
        // rate, and the watermark trips.
        let mut out = Vec::new();
        let mut op = 0;
        let mut tripped_at = None;
        for round in 0..400u64 {
            for i in 0..8u64 {
                op += 1;
                let _ = s.try_enqueue(req(op, 10_000 + round * 8 + i));
            }
            s.step(round, &mut out);
            if s.budget() == min {
                tripped_at = Some(round);
                break;
            }
        }
        assert_eq!(s.budget(), min, "watermark never tripped");
        assert!(s.counters.budget_reductions >= 1);
        // Let it drain; budget returns to the duel's recommendation.
        let from = tripped_at.unwrap() + 1;
        for t in from..from + 200 {
            s.step(t, &mut out);
        }
        assert!(s.budget() > min, "budget never restored after drain");
        assert!(s.counters.budget_restorations >= 1);
    }

    #[test]
    fn slowdown_divides_throughput() {
        let mut a = Shard::new(cfg());
        let mut b = Shard::new(cfg());
        b.set_slowdown(3);
        for i in 0..16u64 {
            a.try_enqueue(req(i, 5_000 + i));
            b.try_enqueue(req(i, 5_000 + i));
        }
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        a.step(0, &mut oa);
        b.step(0, &mut ob);
        assert!(
            ob.len() < oa.len(),
            "slowdown served {} vs {} at full speed",
            ob.len(),
            oa.len()
        );
    }
}
