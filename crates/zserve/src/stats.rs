//! Service-side counters and latency percentiles.
//!
//! All latencies are in virtual ticks, so every number here is
//! deterministic and safe to pin in a checked-in benchmark report.

/// Summary of a latency sample set: percentiles by exact sort (the
/// sample counts here are small enough that a histogram sketch would
/// only add noise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median latency in ticks.
    pub p50: u64,
    /// 95th-percentile latency in ticks.
    pub p95: u64,
    /// 99th-percentile latency in ticks.
    pub p99: u64,
    /// Worst observed latency in ticks.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a sample set. Sorts a copy; empty input yields the
    /// all-zero summary.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pct = |p: u64| {
            // Nearest-rank percentile: smallest sample with at least
            // p% of the mass at or below it, i.e. the smallest rank r
            // (1-based) with r·100 ≥ N·p. `div_ceil` computes exactly
            // that, including the even-N median (N=4, p50 → rank 2) and
            // the small-N tails (N=2, p99 → rank 2); the `.max(1)`
            // only guards p=0. Locked against a naive reference by
            // `nearest_rank_matches_naive_reference`.
            let rank = (sorted.len() as u64 * p).div_ceil(100).max(1) as usize;
            sorted[rank - 1]
        };
        Self {
            count: sorted.len() as u64,
            p50: pct(50),
            p95: pct(95),
            p99: pct(99),
            max: *sorted.last().unwrap(),
        }
    }
}

/// Everything a soak run counts. Exact-once delivery is checked from
/// these: `acked` must equal the ops issued, `duplicate_acks` and
/// `lost` must be zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Operations the client submitted (first attempts only).
    pub ops_issued: u64,
    /// Operations acknowledged exactly once.
    pub acked: u64,
    /// Acks delivered for an already-acked operation (hedge + retry
    /// races; must stay observable-as-zero at the client — duplicates
    /// are detected and suppressed, but counted here).
    pub duplicate_acks: u64,
    /// Operations that exhausted retries or hit the deadline without an
    /// ack.
    pub failed: u64,
    /// Cache hits across all shards.
    pub hits: u64,
    /// Cache misses across all shards.
    pub misses: u64,
    /// Requests bounced by shard queue-full rejection.
    pub queue_rejections: u64,
    /// Requests bounced by client-side admission control (inflight
    /// limit).
    pub admission_rejections: u64,
    /// Retry attempts sent (beyond first attempts).
    pub retries: u64,
    /// Hedged (duplicate, racing) requests sent.
    pub hedges: u64,
    /// Requests that timed out waiting for a reply.
    pub timeouts: u64,
    /// Successful shard replies discarded by an active drop fault.
    pub dropped_replies: u64,
    /// Shard crashes caught and converted to typed failures.
    pub shard_crashes: u64,
    /// Cold shard rebuilds completed.
    pub shard_rebuilds: u64,
    /// Walk-budget reductions applied by overload control.
    pub budget_reductions: u64,
    /// Walk-budget restorations after load receded.
    pub budget_restorations: u64,
    /// Completed-op latency samples, in ticks (first submit → ack).
    pub latencies: Vec<u64>,
}

impl ServeStats {
    /// Latency percentile summary over all completed ops.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::from_samples(&self.latencies)
    }

    /// Hit fraction of all cache lookups (0 when nothing completed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn single_sample() {
        let s = LatencySummary::from_samples(&[7]);
        assert_eq!((s.count, s.p50, s.p95, s.p99, s.max), (1, 7, 7, 7, 7));
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let s = LatencySummary::from_samples(&[9, 1, 5]);
        assert_eq!(s.p50, 5);
        assert_eq!(s.max, 9);
    }

    /// Naive nearest-rank reference: linear scan for the first 1-based
    /// index `i` whose prefix covers at least `p`% of the mass
    /// (`i·100 ≥ N·p`), written independently of the `div_ceil` form.
    fn naive_pct(sorted: &[u64], p: u64) -> u64 {
        let n = sorted.len() as u64;
        for i in 1..=n {
            if i * 100 >= n * p {
                return sorted[(i - 1) as usize];
            }
        }
        *sorted.last().unwrap()
    }

    #[test]
    fn nearest_rank_matches_naive_reference() {
        // Property test over every N in 1..=200 with adversarial sample
        // values (duplicates, zeros, large gaps) from a fixed LCG, plus
        // the even/small-N corners the audit called out (N=2, N=4).
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 1000
        };
        for n in 1..=200usize {
            let mut samples: Vec<u64> = (0..n).map(|_| next()).collect();
            let s = LatencySummary::from_samples(&samples);
            samples.sort_unstable();
            for (p, got) in [(50, s.p50), (95, s.p95), (99, s.p99)] {
                assert_eq!(got, naive_pct(&samples, p), "N={n} p{p}: {samples:?}");
            }
            assert_eq!(s.max, *samples.last().unwrap(), "N={n} max");
            assert_eq!(s.count, n as u64, "N={n} count");
        }
    }

    #[test]
    fn even_n_median_takes_lower_of_the_two_middles() {
        // N=4, p50: rank = ceil(200/100) = 2 — the lower middle, per
        // the nearest-rank definition (not an interpolated average).
        let s = LatencySummary::from_samples(&[10, 20, 30, 40]);
        assert_eq!(s.p50, 20);
        // N=2: p50 is the first sample, the tails are the second.
        let s = LatencySummary::from_samples(&[1, 2]);
        assert_eq!((s.p50, s.p95, s.p99), (1, 2, 2));
    }

    #[test]
    fn hit_rate_handles_zero() {
        let mut st = ServeStats::default();
        assert_eq!(st.hit_rate(), 0.0);
        st.hits = 3;
        st.misses = 1;
        assert!((st.hit_rate() - 0.75).abs() < 1e-12);
    }
}
