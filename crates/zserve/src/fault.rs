//! Deterministic fault plans: what breaks, where, and when.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s pinned to *virtual*
//! ticks, so a chaos run is a pure function of `(config, plan, seed)` —
//! byte-identical on any machine, at any `--jobs`, on any day. Plans are
//! generated from a seed ([`FaultPlan::generate`]), serialized to a
//! plain-text repro format ([`FaultPlan::to_text`] /
//! [`FaultPlan::parse`]) so a failing schedule can be committed to
//! `tests/corpus/` and replayed forever, and shrunk by the soak harness
//! when an invariant breaks.

use zhash::SplitMix64;

/// What a fault does to its shard for the event's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The shard processes nothing while the window is open.
    Stall,
    /// The shard's service capacity is divided by `factor`.
    Slowdown {
        /// Capacity divisor (≥ 2 to mean anything).
        factor: u32,
    },
    /// Successful responses from the shard are silently discarded
    /// (requests are still applied — the classic lost-ack fault).
    Drop,
    /// The shard's request queue is clamped to `cap` slots, bouncing
    /// excess arrivals with queue-full rejections.
    QueueBurst {
        /// Clamped queue capacity during the window.
        cap: u32,
    },
    /// The next request the shard processes panics inside the cache
    /// operation; the shard executor catches it, loses the shard's
    /// array, and (if rebuild is enabled) comes back cold later.
    /// `dur` is ignored — the outage length is the rebuild delay.
    Poison,
}

impl FaultKind {
    /// Repro-format token (`stall`, `slow:F`, `drop`, `burst:C`,
    /// `poison`).
    pub fn token(&self) -> String {
        match self {
            FaultKind::Stall => "stall".to_string(),
            FaultKind::Slowdown { factor } => format!("slow:{factor}"),
            FaultKind::Drop => "drop".to_string(),
            FaultKind::QueueBurst { cap } => format!("burst:{cap}"),
            FaultKind::Poison => "poison".to_string(),
        }
    }

    fn parse_token(tok: &str) -> Option<FaultKind> {
        if let Some(f) = tok.strip_prefix("slow:") {
            return f.parse().ok().map(|factor| FaultKind::Slowdown { factor });
        }
        if let Some(c) = tok.strip_prefix("burst:") {
            return c.parse().ok().map(|cap| FaultKind::QueueBurst { cap });
        }
        match tok {
            "stall" => Some(FaultKind::Stall),
            "drop" => Some(FaultKind::Drop),
            "poison" => Some(FaultKind::Poison),
            _ => None,
        }
    }
}

/// One scheduled fault: `kind` hits `shard` at tick `at` for `dur`
/// ticks (`[at, at + dur)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Target shard index.
    pub shard: u32,
    /// First tick the fault is active.
    pub at: u64,
    /// Window length in ticks (ignored by [`FaultKind::Poison`]).
    pub dur: u64,
    /// The fault itself.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
}

/// Which fault kinds a generated plan draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMenu {
    /// Include stall windows.
    pub stall: bool,
    /// Include slowdown windows.
    pub slowdown: bool,
    /// Include response-drop windows.
    pub drop: bool,
    /// Include queue-clamp bursts.
    pub queue_burst: bool,
    /// Include shard poisoning.
    pub poison: bool,
}

impl FaultMenu {
    /// Every fault kind enabled.
    pub fn all() -> Self {
        Self {
            stall: true,
            slowdown: true,
            drop: true,
            queue_burst: true,
            poison: true,
        }
    }

    /// No fault kinds enabled.
    pub fn none() -> Self {
        Self {
            stall: false,
            slowdown: false,
            drop: false,
            queue_burst: false,
            poison: false,
        }
    }
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Generates a plan from a seed: for each enabled kind in `menu`,
    /// one window per kind on a seed-chosen shard, placed inside
    /// `[horizon/8, 3·horizon/4)` so the service is warmed up before
    /// anything breaks and has time to recover afterwards. `max_window`
    /// bounds every window length (stall windows are additionally
    /// halved, so "transparent" stall schedules stay under the client
    /// timeout).
    pub fn generate(
        seed: u64,
        shards: u32,
        horizon: u64,
        max_window: u64,
        menu: FaultMenu,
    ) -> Self {
        let mut rng = SplitMix64::new(seed ^ FAULT_PLAN_TAG);
        let mut events = Vec::new();
        let lo = horizon / 8;
        let hi = (horizon * 3 / 4).max(lo + 1);
        let window = |rng: &mut SplitMix64, scale: u64| (rng.next_below(scale) + scale / 2).max(4);
        let place = |rng: &mut SplitMix64| lo + rng.next_below(hi - lo);
        if menu.stall {
            events.push(FaultEvent {
                shard: rng.next_below(u64::from(shards)) as u32,
                at: place(&mut rng),
                dur: window(&mut rng, (max_window / 2).max(4)),
                kind: FaultKind::Stall,
            });
        }
        if menu.slowdown {
            events.push(FaultEvent {
                shard: rng.next_below(u64::from(shards)) as u32,
                at: place(&mut rng),
                dur: window(&mut rng, max_window),
                kind: FaultKind::Slowdown {
                    factor: 2 + rng.next_below(2) as u32,
                },
            });
        }
        if menu.drop {
            events.push(FaultEvent {
                shard: rng.next_below(u64::from(shards)) as u32,
                at: place(&mut rng),
                dur: window(&mut rng, max_window),
                kind: FaultKind::Drop,
            });
        }
        if menu.queue_burst {
            events.push(FaultEvent {
                shard: rng.next_below(u64::from(shards)) as u32,
                at: place(&mut rng),
                dur: window(&mut rng, max_window),
                kind: FaultKind::QueueBurst {
                    cap: 2 + rng.next_below(3) as u32,
                },
            });
        }
        if menu.poison {
            events.push(FaultEvent {
                shard: rng.next_below(u64::from(shards)) as u32,
                at: place(&mut rng),
                dur: 0,
                kind: FaultKind::Poison,
            });
        }
        Self { events }
    }

    /// Whether the plan only contains timing-transparent faults —
    /// slowdowns, and stalls shorter than `timeout / 2` — under which a
    /// correct service produces the exact same cache-state digest as a
    /// fault-free run (per-shard FIFO order is preserved and no retry
    /// or hedge should fire).
    pub fn is_transparent(&self, timeout: u64) -> bool {
        self.events.iter().all(|e| match e.kind {
            FaultKind::Slowdown { .. } => true,
            FaultKind::Stall => e.dur <= timeout / 2,
            _ => false,
        })
    }

    /// Serializes the plan as repro-format lines (`fault <shard> <at>
    /// <dur> <kind>`), one per event.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "fault {} {} {} {}\n",
                e.shard,
                e.at,
                e.dur,
                e.kind.token()
            ));
        }
        out
    }

    /// Parses repro-format text: `fault` lines become events, comments
    /// (`#`) and blank lines are skipped, anything else is an error
    /// naming the offending 1-based line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let mut parts = t.split_whitespace();
            let bad = |msg: &str| format!("line {}: {msg}: {t:?}", i + 1);
            if parts.next() != Some("fault") {
                return Err(bad("expected `fault`"));
            }
            let shard = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("bad shard"))?;
            let at = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("bad start tick"))?;
            let dur = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("bad duration"))?;
            let kind = parts
                .next()
                .and_then(FaultKind::parse_token)
                .ok_or_else(|| bad("bad fault kind"))?;
            if parts.next().is_some() {
                return Err(bad("trailing fields"));
            }
            events.push(FaultEvent {
                shard,
                at,
                dur,
                kind,
            });
        }
        Ok(Self { events })
    }
}

/// Domain-separation tag so a fault-plan seed never collides with the
/// workload or service seeds derived from the same base.
const FAULT_PLAN_TAG: u64 = 0xfa01_7a57_5eed_c0de;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let plan = FaultPlan::generate(7, 4, 2000, 64, FaultMenu::all());
        assert_eq!(plan.events.len(), 5);
        let parsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::generate(1, 4, 2000, 64, FaultMenu::all());
        let b = FaultPlan::generate(1, 4, 2000, 64, FaultMenu::all());
        let c = FaultPlan::generate(2, 4, 2000, 64, FaultMenu::all());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn transparency_classification() {
        let slow = FaultPlan {
            events: vec![FaultEvent {
                shard: 0,
                at: 100,
                dur: 50,
                kind: FaultKind::Slowdown { factor: 2 },
            }],
        };
        assert!(slow.is_transparent(48));
        let long_stall = FaultPlan {
            events: vec![FaultEvent {
                shard: 0,
                at: 100,
                dur: 40,
                kind: FaultKind::Stall,
            }],
        };
        assert!(!long_stall.is_transparent(48));
        let drop = FaultPlan {
            events: vec![FaultEvent {
                shard: 0,
                at: 100,
                dur: 10,
                kind: FaultKind::Drop,
            }],
        };
        assert!(!drop.is_transparent(48));
        assert!(FaultPlan::none().is_transparent(48));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "fault",
            "fault x 1 1 stall",
            "fault 0 1 1 nope",
            "fault 0 1 1 stall extra",
            "nonsense 0 1 1 stall",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
        let ok = FaultPlan::parse("# comment\n\nfault 1 10 5 slow:3\n").unwrap();
        assert_eq!(ok.events[0].kind, FaultKind::Slowdown { factor: 3 });
    }
}
