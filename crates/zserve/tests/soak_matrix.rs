//! End-to-end soak: the full schedule matrix must survive with zero
//! invariant violations, byte-identically across repeat runs, and the
//! robustness machinery must be load-bearing — disabling the retry
//! path or the poison-rebuild path has to make the soak fail within a
//! single schedule.

use std::fs;
use std::path::Path;

use zserve::soak::{replay_repro, run_soak, schedule_matrix, soak_point};
use zserve::ServeConfig;

fn smoke() -> ServeConfig {
    ServeConfig::default().smoke()
}

#[test]
fn full_matrix_survives_chaos() {
    let report = run_soak(&smoke(), &[1, 2], false);
    assert_eq!(report.rows.len(), 16);
    for row in &report.rows {
        assert!(
            row.violations.is_empty(),
            "schedule {} seed {} violated: {:?}",
            row.schedule,
            row.seed,
            row.violations
        );
    }
    // The matrix must have actually hurt: faults fired, recovery ran.
    let total = |f: fn(&zserve::soak::SoakRow) -> u64| report.rows.iter().map(f).sum::<u64>();
    assert!(total(|r| r.dropped_replies) > 0);
    assert!(total(|r| r.shard_crashes) > 0);
    assert!(total(|r| r.shard_rebuilds) > 0);
    assert!(total(|r| r.retries) > 0);
    assert!(total(|r| r.queue_rejections) > 0);
    assert!(total(|r| r.budget_reductions) > 0);
    assert!(total(|r| r.budget_restorations) > 0);
}

#[test]
fn soak_report_is_byte_identical_across_runs() {
    let a = run_soak(&smoke(), &[3], false);
    let b = run_soak(&smoke(), &[3], false);
    assert_eq!(a.to_text(), b.to_text());
    assert!(!a.to_text().is_empty());
}

#[test]
fn disabling_retries_fails_the_drop_schedule() {
    let mut cfg = smoke();
    cfg.retries_enabled = false;
    let schedule = schedule_matrix(&cfg, 1)
        .into_iter()
        .find(|s| s.name == "drop")
        .unwrap();
    let row = soak_point(&cfg, &schedule, 1, true);
    assert!(
        !row.violations.is_empty(),
        "drop schedule must fail without retries"
    );
    // The shrunk repro must itself replay to a failure.
    let repro = row.repro.expect("violated point must carry a repro");
    let replayed = replay_repro(&cfg, &repro).unwrap();
    assert!(!replayed.violations.is_empty(), "repro did not reproduce");
}

#[test]
fn disabling_rebuild_fails_the_poison_schedule() {
    let mut cfg = smoke();
    cfg.rebuild_enabled = false;
    let schedule = schedule_matrix(&cfg, 1)
        .into_iter()
        .find(|s| s.name == "poison")
        .unwrap();
    let row = soak_point(&cfg, &schedule, 1, true);
    assert!(
        !row.violations.is_empty(),
        "poison schedule must fail without rebuild"
    );
    let repro = row.repro.expect("violated point must carry a repro");
    let replayed = replay_repro(&cfg, &repro).unwrap();
    assert!(!replayed.violations.is_empty(), "repro did not reproduce");
}

/// Every committed repro in `tests/corpus/serve_*.txt` must replay
/// clean against the current service — the same regression pattern the
/// zoracle conformance corpus uses.
#[test]
fn corpus_repros_replay_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut seen = 0;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("corpus dir")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("serve_") || !name.ends_with(".txt") {
            continue;
        }
        seen += 1;
        let text = fs::read_to_string(&path).unwrap();
        let row = replay_repro(&smoke(), &text).unwrap();
        assert!(
            row.violations.is_empty(),
            "{name} regressed: {:?}",
            row.violations
        );
    }
    assert!(seen > 0, "corpus must contain at least one serve repro");
}
