//! Trace-driven simulation: record the L2 reference stream once, then
//! replay it against any L2 design.
//!
//! This is how the paper runs OPT (§VI-B): Belady's policy needs the
//! future, so the L2 stream is recorded with fixed L1s and replayed with
//! next-use annotations. Replaying the *same* trace against every design
//! also removes the (second-order) feedback of inclusion victims on L1
//! contents, which the paper's trace-driven mode accepts as well.

use crate::config::SimConfig;
use crate::mem::MemoryChannels;
use crate::stats::SimStats;
use zcache_core::{ArrayKind, CacheBuilder, CacheStats, PolicyKind, SeededMap};
use zhash::{HashKind, Hasher64, Mix64};
use zworkloads::{AddressStream, Workload, ZipfCache};

/// Fixed seed for the next-use oracle's last-seen map (layout never
/// escapes — only next-use positions do).
const NEXT_USE_SEED: u64 = 0x0b75_ace1_0f75_ace1;

/// One recorded L2 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRef {
    /// Issuing core.
    pub core: u32,
    /// Line address.
    pub line: u64,
    /// Store (write-back or store-miss fill) vs load.
    pub write: bool,
    /// Demand access (stalls the core) vs posted write-back.
    pub demand: bool,
    /// Core work (instructions ≡ cycles at IPC = 1) since this core's
    /// previous L2 access.
    pub work: u32,
}

/// A recorded L2 reference stream plus the L1-side statistics of the
/// recording run (reused for every replay so energy accounting stays
/// comparable).
#[derive(Debug, Clone, Default)]
pub struct L2Trace {
    /// Global-order references.
    pub refs: Vec<TraceRef>,
    /// Instructions the recording run executed.
    pub instructions: u64,
    /// Cores recorded.
    pub cores: u32,
    /// Merged L1 statistics of the recording run.
    pub l1_stats: CacheStats,
}

impl L2Trace {
    /// Number of recorded references.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Flattens the trace to `(line, write)` pairs in global order —
    /// the shape the `zoracle` differential harness consumes, so a
    /// recorded workload stream can drive a production cache and its
    /// brute-force reference twin in lockstep (posted write-backs become
    /// plain writes; bank interleaving is a timing concern the
    /// single-array conformance check deliberately ignores).
    pub fn conformance_stream(&self) -> Vec<(u64, bool)> {
        self.refs.iter().map(|r| (r.line, r.write)).collect()
    }

    /// Computes, for each reference, the position of the next reference
    /// to the same line (`u64::MAX` if never) — the OPT oracle.
    pub fn next_uses(&self) -> Vec<u64> {
        let mut next = Vec::new();
        let mut last = SeededMap::with_capacity(1024, NEXT_USE_SEED);
        self.next_uses_into(&mut next, &mut last);
        next
    }

    /// Buffer-reusing form of [`L2Trace::next_uses`]: one backward pass
    /// over the trace, filling `next` (cleared first) and using `last` as
    /// line → latest-position scratch (also cleared first). Sweeps call
    /// this once per grid point with long-lived buffers so the oracle
    /// costs no steady-state allocation.
    pub fn next_uses_into(&self, next: &mut Vec<u64>, last: &mut SeededMap<u64>) {
        next.clear();
        next.resize(self.refs.len(), u64::MAX);
        last.clear();
        for (i, r) in self.refs.iter().enumerate().rev() {
            let (slot, present) = last.get_or_insert_with(r.line, || i as u64);
            if present {
                next[i] = *slot;
                *slot = i as u64;
            }
        }
    }
}

/// Runs `workload` through per-core L1s (no timing-accurate L2) and
/// records the resulting L2 reference stream.
///
/// Cores are interleaved on a fixed nominal L1-miss penalty, so the
/// interleaving is deterministic and design-independent.
pub fn record_trace(cfg: &SimConfig, workload: &Workload) -> L2Trace {
    let mut trace = L2Trace::default();
    record_trace_into(cfg, workload, &mut ZipfCache::new(), &mut trace);
    trace
}

/// Buffer-reusing form of [`record_trace`]: overwrites `trace` in place
/// (the reference `Vec` keeps its capacity across grid points) and pulls
/// Zipf tables from `zipf` instead of rebuilding them per call. Produces
/// exactly the trace [`record_trace`] does.
pub fn record_trace_into(
    cfg: &SimConfig,
    workload: &Workload,
    zipf: &mut ZipfCache,
    trace: &mut L2Trace,
) {
    const NOMINAL_MISS_STALL: u64 = 30;
    let cores = cfg.cores as usize;
    let mut l1s: Vec<_> = (0..cfg.cores)
        .map(|c| {
            CacheBuilder::new()
                .lines(cfg.l1_lines)
                .ways(cfg.l1_ways)
                .array(ArrayKind::SetAssoc {
                    hash: HashKind::BitSelect,
                })
                .policy(PolicyKind::Lru)
                .seed(cfg.seed ^ u64::from(c))
                .build()
        })
        .collect();
    let mut streams = workload.streams_cached(cores, cfg.seed, zipf);
    let mut instrs = vec![0u64; cores];
    let mut pending_work = vec![0u32; cores];
    trace.refs.clear();
    let refs = &mut trace.refs;

    // Linear argmin over per-core next-event times: picks the smallest
    // `(time, core)` pair, the exact order the former binary heap popped.
    let mut next_time = vec![0u64; cores];
    let mut active = cores;
    while active > 0 {
        let mut core = 0usize;
        let mut now = u64::MAX;
        for (c, &t) in next_time.iter().enumerate() {
            if t < now {
                now = t;
                core = c;
            }
        }
        let c = core;
        let r = streams[c].next_ref();
        instrs[c] += u64::from(r.gap);
        pending_work[c] = pending_work[c].saturating_add(r.gap);
        let out = l1s[c].access_full(r.line, r.write, u64::MAX);
        let mut next = now + u64::from(r.gap);
        if out.is_miss() {
            if let (Some(ev), true) = (out.evicted, out.evicted_dirty) {
                refs.push(TraceRef {
                    core: core as u32,
                    line: ev,
                    write: true,
                    demand: false,
                    work: 0,
                });
            }
            refs.push(TraceRef {
                core: core as u32,
                line: r.line,
                write: r.write,
                demand: true,
                work: pending_work[c],
            });
            pending_work[c] = 0;
            next += NOMINAL_MISS_STALL;
        }
        if instrs[c] < cfg.instrs_per_core {
            next_time[c] = next;
        } else {
            next_time[c] = u64::MAX;
            active -= 1;
        }
    }

    let mut l1_stats = CacheStats::new();
    for l1 in &l1s {
        l1_stats.merge(l1.stats());
    }
    trace.instructions = instrs.iter().sum();
    trace.cores = cfg.cores;
    trace.l1_stats = l1_stats;
}

/// Reusable working state for [`replay_with`]: per-core reference
/// queues, cursors and clocks. One instance per worker amortises the
/// allocations across every `(design, policy)` replay of a sweep.
#[derive(Debug, Default)]
pub struct ReplayScratch {
    queues: Vec<Vec<u32>>,
    heads: Vec<usize>,
    cycles: Vec<u64>,
    next_time: Vec<u64>,
}

impl ReplayScratch {
    /// An empty scratch (buffers grow on first use, then stick).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Replays a recorded trace against the configured L2 design, with full
/// timing (bank latency, memory queueing) and next-use annotations so
/// [`PolicyKind::Opt`] works.
///
/// Convenience wrapper over [`replay_with`]: computes the next-use
/// oracle internally when the policy needs it.
pub fn replay(cfg: &SimConfig, trace: &L2Trace) -> SimStats {
    let mut scratch = ReplayScratch::new();
    if cfg.l2.policy == PolicyKind::Opt {
        let next_uses = trace.next_uses();
        replay_with(cfg, trace, Some(&next_uses), &mut scratch)
    } else {
        replay_with(cfg, trace, None, &mut scratch)
    }
}

/// Replays `trace` like [`replay`], reusing `scratch` across calls and
/// taking the next-use oracle from the caller.
///
/// `next_uses` is only read by [`PolicyKind::Opt`] (the only policy that
/// consults future knowledge), so callers replaying under other policies
/// pass `None` and skip the oracle's backward pass entirely; sweeps
/// replaying one trace under OPT across many designs compute it once via
/// [`L2Trace::next_uses_into`] and share the slice.
///
/// # Panics
///
/// Panics if the policy is OPT and `next_uses` is `None` (a silent
/// `u64::MAX` fallback would degrade OPT to noise), or if `next_uses` is
/// shorter than the trace.
pub fn replay_with(
    cfg: &SimConfig,
    trace: &L2Trace,
    next_uses: Option<&[u64]>,
    scratch: &mut ReplayScratch,
) -> SimStats {
    assert!(
        cfg.l2.policy != PolicyKind::Opt || next_uses.is_some(),
        "OPT replay requires next-use annotations"
    );
    if let Some(n) = next_uses {
        assert!(n.len() >= trace.refs.len(), "next-use oracle too short");
    }
    let cores = trace.cores.max(1) as usize;
    let l2_latency = cfg.effective_l2_latency();
    let mut banks: Vec<_> = (0..cfg.l2_banks)
        .map(|b| {
            CacheBuilder::new()
                .lines(cfg.lines_per_bank())
                .ways(cfg.l2.ways)
                .array(cfg.l2.array)
                .policy(cfg.l2.policy)
                .seed(cfg.seed.wrapping_mul(31).wrapping_add(u64::from(b)))
                .build()
        })
        .collect();
    let bank_hash = Mix64::new(cfg.seed ^ 0xba2c_u64);
    let nbanks = u64::from(cfg.l2_banks);
    // Banks are a power of two in every shipped config; mask instead of
    // divide then (identical value: `h % 2^k == h & (2^k - 1)`).
    let bank_mask = (nbanks.is_power_of_two()).then(|| nbanks - 1);
    let bank_of = |line: u64| -> usize {
        let h = bank_hash.hash(line);
        match bank_mask {
            Some(mask) => (h & mask) as usize,
            None => (h % nbanks) as usize,
        }
    };
    let mut mem = MemoryChannels::new(
        cfg.mem_controllers,
        cfg.mem_latency,
        cfg.mem_cycles_per_transfer,
    );
    let mut ports = crate::bankport::BankPorts::new(cfg.l2_banks);

    // Per-core reference queues, in global order (buffers reused).
    if scratch.queues.len() < cores {
        scratch.queues.resize_with(cores, Vec::new);
    }
    let queues = &mut scratch.queues[..cores];
    for q in queues.iter_mut() {
        q.clear();
    }
    for (i, r) in trace.refs.iter().enumerate() {
        queues[r.core as usize].push(i as u32);
    }
    scratch.heads.clear();
    scratch.heads.resize(cores, 0);
    let heads = &mut scratch.heads[..];
    scratch.cycles.clear();
    scratch.cycles.resize(cores, 0);
    let cycles = &mut scratch.cycles[..];
    scratch.next_time.clear();
    scratch.next_time.resize(cores, 0);
    let next_time = &mut scratch.next_time[..];

    // Linear argmin over per-core next-event times: picks the smallest
    // `(time, core)` pair, the exact order the former binary heap popped.
    let mut active = 0usize;
    for (c, q) in queues.iter().enumerate() {
        if q.is_empty() {
            next_time[c] = u64::MAX;
        } else {
            next_time[c] = 0;
            active += 1;
        }
    }
    while active > 0 {
        let mut c = 0usize;
        let mut now = u64::MAX;
        for (i, &t) in next_time.iter().enumerate() {
            if t < now {
                now = t;
                c = i;
            }
        }
        let pos = queues[c][heads[c]] as usize;
        heads[c] += 1;
        let r = &trace.refs[pos];
        let next_use = next_uses.map_or(u64::MAX, |n| n[pos]);
        let mut next = now + u64::from(r.work);

        let b = bank_of(r.line);
        if r.demand {
            let mut stall = u64::from(cfg.l1_to_l2_latency) + u64::from(l2_latency);
            stall += ports.demand(b, next + stall);
            let ops_before = banks[b].stats().tag_reads + banks[b].stats().tag_writes;
            let lout = banks[b].access_full(r.line, r.write, next_use);
            let walk_ops = (banks[b].stats().tag_reads + banks[b].stats().tag_writes - ops_before)
                .saturating_sub(u64::from(cfg.l2.ways)) as u32;
            if walk_ops > 0 {
                ports.background(b, next + stall, walk_ops);
            }
            if lout.is_miss() {
                stall += mem.fetch(r.line, next + stall);
                if let (Some(ev), true) = (lout.evicted, lout.evicted_dirty) {
                    mem.writeback(ev, next + stall);
                }
            }
            next += stall;
        } else {
            // Posted write-back: touch the L2 copy if still resident,
            // spill to memory otherwise; never stalls the core. The
            // residence check and the write share one lookup.
            if banks[b].write_if_present(r.line, next_use) {
                ports.background(b, next, 1);
            } else {
                mem.writeback(r.line, next);
            }
        }

        cycles[c] = next;
        if heads[c] < queues[c].len() {
            next_time[c] = next;
        } else {
            next_time[c] = u64::MAX;
            active -= 1;
        }
    }

    let mut l2 = CacheStats::new();
    for bank in &banks {
        l2.merge(bank.stats());
    }
    SimStats {
        instructions: trace.instructions,
        max_cycles: cycles.iter().copied().max().unwrap_or(0),
        sum_core_cycles: cycles.iter().sum(),
        cores: trace.cores,
        banks: cfg.l2_banks,
        l1: trace.l1_stats.clone(),
        l2,
        mem_accesses: mem.accesses(),
        mem_queue_cycles: mem.queue_cycles(),
        invalidation_rounds: 0,
        downgrades: 0,
        back_invalidations: 0,
        l2_tag_contention_cycles: ports.contention_cycles(),
        l2_walk_delay_cycles: ports.walk_delay_cycles(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::L2Design;
    use zworkloads::suite::{by_name, Scale};

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::small();
        cfg.cores = 4;
        cfg.instrs_per_core = 30_000;
        cfg
    }

    #[test]
    fn record_produces_demand_refs_and_work() {
        let wl = by_name("gcc", 4, Scale::SMALL).unwrap();
        let t = record_trace(&tiny_cfg(), &wl);
        assert!(!t.is_empty());
        assert!(t.instructions >= 4 * 30_000);
        assert!(t.refs.iter().any(|r| r.demand));
        let total_work: u64 = t.refs.iter().map(|r| u64::from(r.work)).sum();
        assert!(total_work <= t.instructions);
    }

    #[test]
    fn record_is_deterministic() {
        let wl = by_name("mcf", 4, Scale::SMALL).unwrap();
        let a = record_trace(&tiny_cfg(), &wl);
        let b = record_trace(&tiny_cfg(), &wl);
        assert_eq!(a.refs, b.refs);
    }

    #[test]
    fn next_uses_point_forward_to_same_line() {
        let wl = by_name("gcc", 4, Scale::SMALL).unwrap();
        let t = record_trace(&tiny_cfg(), &wl);
        let nu = t.next_uses();
        for (i, r) in t.refs.iter().enumerate().take(2_000) {
            let n = nu[i];
            if n != u64::MAX {
                assert!(n > i as u64);
                assert_eq!(t.refs[n as usize].line, r.line);
            }
        }
    }

    #[test]
    fn replay_under_lru_roughly_matches_execution_mpki() {
        // Trace-driven LRU and execution-driven LRU differ only in
        // inclusion feedback and coherence, so MPKI should be close.
        let wl = by_name("cactusADM", 4, Scale::SMALL).unwrap();
        let cfg = tiny_cfg();
        let t = record_trace(&cfg, &wl);
        let replayed = replay(&cfg, &t);
        let executed = crate::System::new(cfg).run(&wl);
        let (a, b) = (replayed.l2_mpki(), executed.l2_mpki());
        assert!(
            (a - b).abs() / b.max(1e-9) < 0.35,
            "trace {a} vs exec {b} MPKI"
        );
    }

    #[test]
    fn opt_beats_lru_on_reuse_heavy_trace() {
        let wl = by_name("cactusADM", 4, Scale::SMALL).unwrap();
        let cfg = tiny_cfg();
        let t = record_trace(&cfg, &wl);
        let lru = replay(&cfg, &t);
        let opt_cfg = cfg.with_l2(L2Design::baseline().with_policy(PolicyKind::Opt));
        let opt = replay(&opt_cfg, &t);
        assert!(
            opt.l2.misses <= lru.l2.misses,
            "OPT {} vs LRU {} misses",
            opt.l2.misses,
            lru.l2.misses
        );
    }

    #[test]
    fn more_candidates_do_not_increase_opt_misses() {
        // Under OPT, associativity can only help (no policy ill-effects):
        // Z4/52 must not miss more than SA-4 on the same trace.
        let wl = by_name("omnetpp", 4, Scale::SMALL).unwrap();
        let cfg = tiny_cfg();
        let t = record_trace(&cfg, &wl);
        let sa = replay(
            &cfg.clone()
                .with_l2(L2Design::baseline().with_policy(PolicyKind::Opt)),
            &t,
        );
        let z = replay(
            &cfg.with_l2(L2Design::zcache(4, 3).with_policy(PolicyKind::Opt)),
            &t,
        );
        assert!(
            z.l2.misses as f64 <= sa.l2.misses as f64 * 1.02,
            "Z4/52 {} vs SA-4 {}",
            z.l2.misses,
            sa.l2.misses
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let wl = by_name("milc", 4, Scale::SMALL).unwrap();
        let cfg = tiny_cfg();
        let t = record_trace(&cfg, &wl);
        assert_eq!(replay(&cfg, &t), replay(&cfg, &t));
    }

    #[test]
    fn record_into_reused_buffers_matches_fresh() {
        let cfg = tiny_cfg();
        let mut zipf = ZipfCache::new();
        let mut t = L2Trace::default();
        // Overwrite the same trace with a bigger workload first so the
        // second recording runs into non-empty, differently-sized buffers.
        record_trace_into(
            &cfg,
            &by_name("canneal", 4, Scale::SMALL).unwrap(),
            &mut zipf,
            &mut t,
        );
        let wl = by_name("gcc", 4, Scale::SMALL).unwrap();
        record_trace_into(&cfg, &wl, &mut zipf, &mut t);
        let fresh = record_trace(&cfg, &wl);
        assert_eq!(t.refs, fresh.refs);
        assert_eq!(t.instructions, fresh.instructions);
        assert_eq!(t.l1_stats, fresh.l1_stats);
    }

    #[test]
    fn replay_with_reused_scratch_matches_fresh() {
        let wl = by_name("omnetpp", 4, Scale::SMALL).unwrap();
        let cfg = tiny_cfg();
        let t = record_trace(&cfg, &wl);
        let mut nu = Vec::new();
        let mut last = SeededMap::with_capacity(1024, NEXT_USE_SEED);
        t.next_uses_into(&mut nu, &mut last);
        assert_eq!(nu, t.next_uses());
        let mut scratch = ReplayScratch::new();
        for design in [
            L2Design::baseline(),
            L2Design::zcache(4, 3),
            L2Design::baseline().with_policy(PolicyKind::Opt),
        ] {
            let dcfg = cfg.clone().with_l2(design);
            let oracle = (dcfg.l2.policy == PolicyKind::Opt).then_some(nu.as_slice());
            let reused = replay_with(&dcfg, &t, oracle, &mut scratch);
            assert_eq!(reused, replay(&dcfg, &t), "design {design:?}");
        }
    }

    #[test]
    fn non_opt_replay_ignores_next_use_oracle() {
        // Only OPT consults next-use; handing LRU the oracle (or not)
        // must not change a single statistic.
        let wl = by_name("milc", 4, Scale::SMALL).unwrap();
        let cfg = tiny_cfg();
        let t = record_trace(&cfg, &wl);
        let nu = t.next_uses();
        let mut scratch = ReplayScratch::new();
        let with = replay_with(&cfg, &t, Some(&nu), &mut scratch);
        let without = replay_with(&cfg, &t, None, &mut scratch);
        assert_eq!(with, without);
    }

    #[test]
    #[should_panic(expected = "OPT replay requires next-use annotations")]
    fn opt_replay_without_oracle_panics() {
        let cfg = tiny_cfg().with_l2(L2Design::baseline().with_policy(PolicyKind::Opt));
        let t = L2Trace {
            cores: 1,
            ..Default::default()
        };
        replay_with(&cfg, &t, None, &mut ReplayScratch::new());
    }
}
