//! Memory-controller model: zero-load latency plus channel occupancy.

use zhash::{Hasher64, Mix64};

/// Four address-interleaved memory controllers with 64 GB/s aggregate
/// peak bandwidth (Table I): each 64-byte transfer occupies its channel
/// for a fixed number of cycles, so bursts queue.
#[derive(Debug, Clone)]
pub struct MemoryChannels {
    next_free: Vec<u64>,
    zero_load_latency: u32,
    cycles_per_transfer: u32,
    hash: Mix64,
    accesses: u64,
    queue_cycles: u64,
}

impl MemoryChannels {
    /// Creates `controllers` channels with the given zero-load latency
    /// and per-transfer occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `controllers == 0`.
    pub fn new(controllers: u32, zero_load_latency: u32, cycles_per_transfer: u32) -> Self {
        assert!(controllers > 0, "need at least one memory controller");
        Self {
            next_free: vec![0; controllers as usize],
            zero_load_latency,
            cycles_per_transfer,
            hash: Mix64::new(0x3e3e_0001),
            accesses: 0,
            queue_cycles: 0,
        }
    }

    #[inline]
    fn channel_of(&self, line: u64) -> usize {
        (self.hash.hash(line) % self.next_free.len() as u64) as usize
    }

    /// A demand fetch issued at cycle `now`: returns the total latency
    /// (queueing + zero-load) until data returns.
    #[inline]
    pub fn fetch(&mut self, line: u64, now: u64) -> u64 {
        let ch = self.channel_of(line);
        let start = now.max(self.next_free[ch]);
        let queue = start - now;
        self.next_free[ch] = start + u64::from(self.cycles_per_transfer);
        self.accesses += 1;
        self.queue_cycles += queue;
        queue + u64::from(self.zero_load_latency)
    }

    /// A posted write-back issued at cycle `now`: occupies the channel
    /// but does not stall the requester.
    #[inline]
    pub fn writeback(&mut self, line: u64, now: u64) {
        let ch = self.channel_of(line);
        let start = now.max(self.next_free[ch]);
        self.next_free[ch] = start + u64::from(self.cycles_per_transfer);
        self.accesses += 1;
    }

    /// Total transfers (fetches + write-backs).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total cycles demand fetches spent queueing.
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_channel_gives_zero_load_latency() {
        let mut m = MemoryChannels::new(4, 200, 4);
        assert_eq!(m.fetch(0x1000, 100), 200);
        assert_eq!(m.accesses(), 1);
        assert_eq!(m.queue_cycles(), 0);
    }

    #[test]
    fn same_channel_bursts_queue() {
        let mut m = MemoryChannels::new(1, 200, 4);
        let l0 = m.fetch(1, 0);
        let l1 = m.fetch(2, 0);
        let l2 = m.fetch(3, 0);
        assert_eq!(l0, 200);
        assert_eq!(l1, 204);
        assert_eq!(l2, 208);
        assert_eq!(m.queue_cycles(), 4 + 8);
    }

    #[test]
    fn channels_drain_over_time() {
        let mut m = MemoryChannels::new(1, 200, 4);
        m.fetch(1, 0);
        // Far in the future the channel is idle again.
        assert_eq!(m.fetch(2, 1_000), 200);
    }

    #[test]
    fn writebacks_occupy_but_do_not_stall() {
        let mut m = MemoryChannels::new(1, 200, 4);
        m.writeback(1, 0);
        assert_eq!(m.accesses(), 1);
        // The next fetch at the same instant queues behind the write-back.
        assert_eq!(m.fetch(2, 0), 204);
    }

    #[test]
    fn interleaving_spreads_lines() {
        let m = MemoryChannels::new(4, 200, 4);
        let mut used = std::collections::HashSet::new();
        for line in 0..64u64 {
            used.insert(m.channel_of(line));
        }
        assert_eq!(used.len(), 4, "all channels should be used");
    }

    #[test]
    #[should_panic(expected = "at least one memory controller")]
    fn zero_controllers_panics() {
        MemoryChannels::new(0, 200, 4);
    }
}
