//! Execution- and trace-driven simulation of the paper's 32-core CMP
//! (Table I).
//!
//! This crate is the substitute for the paper's Pin-based x86-64
//! simulator. The modelled machine:
//!
//! * 32 in-order cores, IPC = 1 except on memory accesses, 2 GHz;
//! * private 32 KB 4-way L1s, 1-cycle latency;
//! * a shared, inclusive, 8-bank 8 MB L2 of configurable organization
//!   (set-associative / skew / zcache) with MESI directory coherence,
//!   4-cycle average L1-to-L2 latency and a 6–11-cycle bank latency taken
//!   from the `zenergy` cost model;
//! * 4 memory controllers, 200-cycle zero-load latency, 64 GB/s peak.
//!
//! Because the cores are in-order and single-issue, the architecturally
//! relevant input is the memory reference stream — which is what
//! `zworkloads` generates — so a stream-driven simulator reproduces the
//! quantities the paper reports (L2 MPKI, IPC, energy events).
//!
//! Two modes:
//!
//! * [`System::run`] — execution-driven, for realizable policies (LRU,
//!   bucketed LRU, RRIP, …), with full coherence and inclusion modelling;
//! * [`trace::record_trace`] / [`trace::replay`] — trace-driven, the mode
//!   the paper uses for OPT (§VI-B).
//!
//! # Examples
//!
//! ```
//! use zsim::{L2Design, SimConfig, System};
//! use zworkloads::suite::{by_name, Scale};
//!
//! let mut cfg = SimConfig::small().with_l2(L2Design::zcache(4, 3));
//! cfg.cores = 4;
//! cfg.instrs_per_core = 20_000;
//! let wl = by_name("canneal", 4, Scale::SMALL).unwrap();
//! let stats = System::new(cfg).run(&wl);
//! println!("Z4/52 canneal MPKI = {:.2}", stats.l2_mpki());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bankport;
mod coherence;
mod config;
mod mem;
mod stats;
mod system;
pub mod trace;

pub use bankport::BankPorts;
pub use coherence::{cores_in, DirEntry, Directory};
pub use config::{L2Design, SimConfig};
pub use mem::MemoryChannels;
pub use stats::SimStats;
pub use system::System;
