//! Execution-driven simulation of the Table I CMP.

use crate::bankport::BankPorts;
use crate::coherence::{cores_in, Directory};
use crate::config::SimConfig;
use crate::mem::MemoryChannels;
use crate::stats::SimStats;
use zcache_core::{ArrayKind, CacheBuilder, DynCache, PolicyKind};
use zhash::{HashKind, Hasher64, Mix64};
use zworkloads::{AddressStream, MemRef, Workload};

/// The simulated machine: 32 in-order cores (IPC = 1 except on memory
/// stalls), private 4-way L1s, a shared banked L2 of the configured
/// design, a MESI directory, and bandwidth-limited memory controllers.
///
/// Cores advance on a global event heap ordered by cycle, so the
/// interleaving is deterministic for a given configuration and seed.
///
/// # Examples
///
/// ```
/// use zsim::{SimConfig, System};
/// use zworkloads::{suite, suite::Scale};
///
/// let mut cfg = SimConfig::small();
/// cfg.cores = 4;
/// cfg.instrs_per_core = 10_000;
/// let wl = suite::by_name("swaptions", 4, Scale::SMALL).unwrap();
/// let stats = System::new(cfg).run(&wl);
/// assert!(stats.instructions >= 4 * 10_000);
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SimConfig,
    l2_latency: u32,
    l1s: Vec<DynCache>,
    banks: Vec<DynCache>,
    dir: Directory,
    mem: MemoryChannels,
    ports: BankPorts,
    bank_hash: Mix64,
    invalidation_rounds: u64,
    downgrades: u64,
    back_invalidations: u64,
    coh_l2_data_writes: u64,
}

impl System {
    /// Builds the machine for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the L2 policy is [`PolicyKind::Opt`] (OPT needs future
    /// knowledge; use [`crate::trace`]'s record/replay mode), or if the
    /// cache geometry is invalid.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(
            cfg.l2.policy != PolicyKind::Opt,
            "OPT requires trace-driven simulation; use zsim::trace::record_trace + replay"
        );
        let l2_latency = cfg.effective_l2_latency();
        let l1s = (0..cfg.cores)
            .map(|c| {
                CacheBuilder::new()
                    .lines(cfg.l1_lines)
                    .ways(cfg.l1_ways)
                    .array(ArrayKind::SetAssoc {
                        hash: HashKind::BitSelect,
                    })
                    .policy(PolicyKind::Lru)
                    .seed(cfg.seed ^ u64::from(c))
                    .build()
            })
            .collect();
        let banks = (0..cfg.l2_banks)
            .map(|b| {
                CacheBuilder::new()
                    .lines(cfg.lines_per_bank())
                    .ways(cfg.l2.ways)
                    .array(cfg.l2.array)
                    .policy(cfg.l2.policy)
                    .seed(cfg.seed.wrapping_mul(31).wrapping_add(u64::from(b)))
                    .build()
            })
            .collect();
        let mem = MemoryChannels::new(
            cfg.mem_controllers,
            cfg.mem_latency,
            cfg.mem_cycles_per_transfer,
        );
        Self {
            l2_latency,
            l1s,
            banks,
            dir: Directory::with_capacity(cfg.l2_lines as usize, cfg.seed),
            mem,
            ports: BankPorts::new(cfg.l2_banks),
            bank_hash: Mix64::new(cfg.seed ^ 0xba2c_u64),
            invalidation_rounds: 0,
            downgrades: 0,
            back_invalidations: 0,
            coh_l2_data_writes: 0,
            cfg,
        }
    }

    #[inline]
    fn bank_of(&self, line: u64) -> usize {
        (self.bank_hash.hash(line) % u64::from(self.cfg.l2_banks)) as usize
    }

    /// Handles one data reference; returns the stall cycles beyond the
    /// single-cycle L1 pipeline.
    ///
    /// Steady state performs zero heap allocation: the L1/L2 access
    /// engines reuse their walk buffers, the directory is a pre-sized
    /// seeded table, and ports/memory are fixed arrays (verified by
    /// `tests/alloc_steady_state.rs`).
    #[inline]
    pub fn access(&mut self, core: u32, line: u64, write: bool, next_use: u64, now: u64) -> u64 {
        let mut stall = 0u64;
        let out = self.l1s[core as usize].access_full(line, write, u64::MAX);

        if out.hit {
            if write {
                // Upgrade: invalidate other sharers if any.
                let entry = self.dir.get(line).unwrap_or_default();
                if entry.owner != Some(core) {
                    let others = self.dir.make_owner(line, core);
                    if others != 0 {
                        for c in cores_in(others) {
                            if let Some(dirty) = self.l1s[c as usize].invalidate(line) {
                                if dirty {
                                    self.coh_l2_data_writes += 1;
                                }
                            }
                        }
                        self.invalidation_rounds += 1;
                        stall += u64::from(self.cfg.coherence_penalty);
                    }
                }
            }
            return stall;
        }

        // L1 victim: update directory; write back dirty data to the
        // inclusive L2.
        if let Some(ev) = out.evicted {
            self.dir.remove_sharer(ev, core);
            if out.evicted_dirty {
                let b = self.bank_of(ev);
                if self.banks[b].write_if_present(ev, u64::MAX) {
                    // Posted write-back: occupies the tag port but does
                    // not stall the core.
                    self.ports.background(b, now, 1);
                } else {
                    // Inclusion transiently broken (should not happen);
                    // spill straight to memory.
                    self.mem.writeback(ev, now);
                }
            }
        }

        // Demand access to the L2 bank: queue behind other demand
        // accesses on this bank's tag port (walk traffic yields).
        let b = self.bank_of(line);
        stall += u64::from(self.cfg.l1_to_l2_latency) + u64::from(self.l2_latency);
        stall += self.ports.demand(b, now + stall);
        let tag_ops_before = self.banks[b].stats().tag_reads + self.banks[b].stats().tag_writes;
        let lout = self.banks[b].access_full(line, false, next_use);
        // Walk + relocation tag traffic beyond the (parallel) lookup
        // occupies the port off the critical path.
        let tag_ops =
            self.banks[b].stats().tag_reads + self.banks[b].stats().tag_writes - tag_ops_before;
        let walk_ops = tag_ops.saturating_sub(u64::from(self.cfg.l2.ways)) as u32;
        if walk_ops > 0 {
            self.ports.background(b, now + stall, walk_ops);
        }

        if lout.hit {
            if write {
                let others = self.dir.make_owner(line, core);
                if others != 0 {
                    for c in cores_in(others) {
                        if let Some(dirty) = self.l1s[c as usize].invalidate(line) {
                            if dirty {
                                self.coh_l2_data_writes += 1;
                            }
                        }
                    }
                    self.invalidation_rounds += 1;
                    stall += u64::from(self.cfg.coherence_penalty);
                }
            } else if let Some(_prev_owner) = self.dir.add_sharer(line, core) {
                // A dirty copy lives in another L1: downgrade it and pull
                // the data through the L2.
                self.downgrades += 1;
                self.coh_l2_data_writes += 1;
                stall += u64::from(self.cfg.coherence_penalty);
            }
        } else {
            // L2 miss: fetch from memory.
            stall += self.mem.fetch(line, now + stall);
            self.dir.insert(line, core, write);

            // Inclusion victim: back-invalidate L1 copies.
            if let Some(ev2) = lout.evicted {
                let mask = self.dir.remove(ev2);
                let mut dirty_in_l1 = false;
                for c in cores_in(mask) {
                    if let Some(d) = self.l1s[c as usize].invalidate(ev2) {
                        self.back_invalidations += 1;
                        dirty_in_l1 |= d;
                    }
                }
                if lout.evicted_dirty || dirty_in_l1 {
                    self.mem.writeback(ev2, now + stall);
                }
            }
        }
        stall
    }

    /// Runs `workload` until every core has executed its instruction
    /// budget, returning merged statistics.
    pub fn run(&mut self, workload: &Workload) -> SimStats {
        let cores = self.cfg.cores as usize;
        let budget = self.cfg.instrs_per_core;
        let mut streams = workload.streams(cores, self.cfg.seed);
        let mut instrs = vec![0u64; cores];
        let mut cycles = vec![0u64; cores];
        // Global event order: smallest (cycle, core) first, exactly the
        // order a min-heap of (cycle, core) pairs would pop. Each core's
        // clock is kept as one packed key `(cycle << core_bits) | core`,
        // so lexicographic (cycle, core) order is plain `u64` order and
        // one branchless min1/min2 sweep finds both the lead core and
        // the runner-up. Retired cores park at `u64::MAX`.
        //
        // Dispatch is batched: after one sweep, the lead core's
        // references stream through the core→L1→L2 chain back-to-back
        // for as long as its packed key stays below the runner-up's —
        // i.e. for as long as the lead would win the sweep again (ties
        // break to the lower core index, which is exactly what the
        // packed-key order encodes). The interleaving is identical to a
        // one-sweep-per-reference loop; the group merely skips the
        // sweeps whose outcome is already known. Each core holds one
        // pre-drawn pending reference — streams draw from per-core
        // RNGs, so drawing a core's next reference early never perturbs
        // another core's sequence. Pre-drawing also tells us each core's
        // *next* L1 probe set before its dispatch slot arrives, so we
        // hint it (`prefetch_lookup`, a pure prefetch with no state or
        // stats effect) and let the tag read overlap the other cores'
        // dispatches in the group.
        let core_bits = cores.next_power_of_two().trailing_zeros().max(1);
        let mut keys = vec![0u64; cores];
        for (c, k) in keys.iter_mut().enumerate() {
            *k = c as u64;
        }
        let mut pending: Vec<MemRef> = streams.iter_mut().map(|s| s.next_ref()).collect();
        for (c, r) in pending.iter().enumerate() {
            self.l1s[c].prefetch_lookup(r.line);
        }
        let mut active = cores;

        while active > 0 {
            // Branchless two-minimum sweep: min/max compile to cmov, so
            // the sweep has no data-dependent branches at all.
            let mut lead = u64::MAX;
            let mut runner = u64::MAX;
            for &k in &keys {
                let hi = k.max(lead);
                lead = k.min(lead);
                runner = runner.min(hi);
            }
            loop {
                let core = (lead & ((1 << core_bits) - 1)) as usize;
                let now = lead >> core_bits;
                let r = pending[core];
                instrs[core] += u64::from(r.gap);
                let stall = self.access(core as u32, r.line, r.write, u64::MAX, now);
                let next = now + u64::from(r.gap) + stall;
                cycles[core] = next;
                if instrs[core] >= budget {
                    keys[core] = u64::MAX;
                    active -= 1;
                    break;
                }
                pending[core] = streams[core].next_ref();
                self.l1s[core].prefetch_lookup(pending[core].line);
                debug_assert!(
                    next < (1 << (63 - core_bits)),
                    "cycle count overflows packed key"
                );
                let nk = (next << core_bits) | core as u64;
                if nk < runner {
                    lead = nk;
                    continue;
                }
                keys[core] = nk;
                break;
            }
        }

        self.build_stats(&instrs, &cycles)
    }

    fn build_stats(&self, instrs: &[u64], cycles: &[u64]) -> SimStats {
        let mut l1 = zcache_core::CacheStats::new();
        for c in &self.l1s {
            l1.merge(c.stats());
        }
        let mut l2 = zcache_core::CacheStats::new();
        for b in &self.banks {
            l2.merge(b.stats());
        }
        l2.data_writes += self.coh_l2_data_writes;
        SimStats {
            instructions: instrs.iter().sum(),
            max_cycles: cycles.iter().copied().max().unwrap_or(0),
            sum_core_cycles: cycles.iter().sum(),
            cores: self.cfg.cores,
            banks: self.cfg.l2_banks,
            l1,
            l2,
            mem_accesses: self.mem.accesses(),
            mem_queue_cycles: self.mem.queue_cycles(),
            invalidation_rounds: self.invalidation_rounds,
            downgrades: self.downgrades,
            back_invalidations: self.back_invalidations,
            l2_tag_contention_cycles: self.ports.contention_cycles(),
            l2_walk_delay_cycles: self.ports.walk_delay_cycles(),
        }
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Read access to the L2 banks (for inspection in tests/examples).
    pub fn banks(&self) -> &[DynCache] {
        &self.banks
    }

    /// Read access to the MESI directory (for invariant checks in
    /// tests/examples).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Read access to the per-core L1s (for inspection in tests/examples).
    pub fn l1s(&self) -> &[DynCache] {
        &self.l1s
    }

    /// The L2 bank index `line` maps to.
    pub fn bank_index(&self, line: u64) -> usize {
        self.bank_of(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::L2Design;
    use zworkloads::suite::{by_name, Scale};
    use zworkloads::{Component, CoreSpec};

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::small();
        cfg.cores = 4;
        cfg.instrs_per_core = 20_000;
        cfg
    }

    #[test]
    fn runs_to_instruction_budget() {
        let wl = by_name("swaptions", 4, Scale::SMALL).unwrap();
        let stats = System::new(tiny_cfg()).run(&wl);
        assert!(stats.instructions >= 4 * 20_000);
        assert!(stats.max_cycles > 0);
        assert!(stats.ipc() > 0.0);
        assert!(stats.l1.accesses > 0);
    }

    #[test]
    fn l1_resident_workload_barely_touches_l2() {
        // blackscholes is the paper's L1-resident case: its steady-state
        // L2 traffic is far below a miss-heavy workload's. (At this tiny
        // scale cold misses dominate short runs, so compare relatively.)
        let bs = System::new(tiny_cfg()).run(&by_name("blackscholes", 4, Scale::SMALL).unwrap());
        let cn = System::new(tiny_cfg()).run(&by_name("canneal", 4, Scale::SMALL).unwrap());
        assert!(
            bs.l2_mpki() < cn.l2_mpki() / 3.0,
            "blackscholes {} vs canneal {}",
            bs.l2_mpki(),
            cn.l2_mpki()
        );
    }

    #[test]
    fn miss_heavy_workload_stresses_memory() {
        let wl = by_name("canneal", 4, Scale::SMALL).unwrap();
        let stats = System::new(tiny_cfg()).run(&wl);
        assert!(stats.l2_mpki() > 3.0, "canneal L2 MPKI {}", stats.l2_mpki());
        assert!(stats.mem_accesses > 0);
    }

    #[test]
    fn sharing_workload_generates_coherence_traffic() {
        let wl = Workload::multithreaded(
            "pingpong",
            CoreSpec::new(vec![(1.0, Component::SharedUniform { lines: 32 })], 0.5, 4),
        );
        let stats = System::new(tiny_cfg()).run(&wl);
        assert!(
            stats.invalidation_rounds > 0,
            "write sharing must invalidate"
        );
        assert!(stats.downgrades > 0, "read-after-write must downgrade");
    }

    #[test]
    fn inclusion_back_invalidates() {
        // A working set far bigger than the L2 forces L2 evictions of
        // L1-resident lines.
        let wl = by_name("mcf", 4, Scale::SMALL).unwrap();
        let mut cfg = tiny_cfg();
        cfg.instrs_per_core = 50_000;
        let stats = System::new(cfg).run(&wl);
        assert!(stats.back_invalidations > 0);
    }

    #[test]
    fn walk_traffic_fills_idle_port_cycles() {
        // §VI-D in the simulator: zcache walks consume real tag-port
        // cycles but yield to demand lookups, so they are delayed into
        // the idle gaps while demand contention stays negligible.
        let wl = by_name("canneal", 4, Scale::SMALL).unwrap();
        let cfg = tiny_cfg().with_l2(L2Design::zcache(4, 3));
        let stats = System::new(cfg).run(&wl);
        assert!(
            stats.l2_walk_delay_cycles > 0,
            "walk traffic must queue into idle cycles"
        );
        let frac = stats.l2_tag_contention_cycles as f64 / stats.max_cycles as f64;
        assert!(frac < 0.05, "demand contention should be tiny: {frac}");
    }

    #[test]
    fn deterministic_across_runs() {
        let wl = by_name("gcc", 4, Scale::SMALL).unwrap();
        let a = System::new(tiny_cfg()).run(&wl);
        let b = System::new(tiny_cfg()).run(&wl);
        assert_eq!(a, b);
    }

    #[test]
    fn zcache_design_runs() {
        let wl = by_name("cactusADM", 4, Scale::SMALL).unwrap();
        let cfg = tiny_cfg().with_l2(L2Design::zcache(4, 3));
        let stats = System::new(cfg).run(&wl);
        assert!(stats.l2.relocations > 0, "zcache must relocate");
        assert!(stats.l2.avg_candidates() > 4.0);
    }

    #[test]
    fn higher_associativity_does_not_hurt_mpki_much() {
        let wl = by_name("cactusADM", 4, Scale::SMALL).unwrap();
        let base = System::new(tiny_cfg()).run(&wl);
        let z = System::new(tiny_cfg().with_l2(L2Design::zcache(4, 3))).run(&wl);
        // Allow noise, but Z4/52 should not be clearly worse than SA-4.
        assert!(
            z.l2_mpki() <= base.l2_mpki() * 1.05,
            "Z4/52 {} vs SA-4 {}",
            z.l2_mpki(),
            base.l2_mpki()
        );
    }

    #[test]
    #[should_panic(expected = "OPT requires trace-driven")]
    fn opt_in_execution_mode_panics() {
        let cfg = tiny_cfg().with_l2(L2Design::baseline().with_policy(PolicyKind::Opt));
        let _ = System::new(cfg);
    }
}
