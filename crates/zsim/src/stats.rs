//! Aggregated simulation statistics.

use zcache_core::CacheStats;
use zenergy::EnergyCounts;

/// Results of one simulation run (execution- or trace-driven).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Instructions executed across all cores.
    pub instructions: u64,
    /// Cycle count of the slowest core (the run's wall-clock length).
    pub max_cycles: u64,
    /// Sum of per-core cycle counts.
    pub sum_core_cycles: u64,
    /// Core count.
    pub cores: u32,
    /// L2 bank count.
    pub banks: u32,
    /// Merged L1 statistics (all cores).
    pub l1: CacheStats,
    /// Merged L2 statistics (all banks).
    pub l2: CacheStats,
    /// Main-memory accesses (fetches + write-backs).
    pub mem_accesses: u64,
    /// Cycles spent queueing at memory controllers (sum over accesses).
    pub mem_queue_cycles: u64,
    /// Coherence invalidation rounds (writes to shared lines).
    pub invalidation_rounds: u64,
    /// Dirty-owner downgrades (reads of modified lines).
    pub downgrades: u64,
    /// L1 lines invalidated by L2 evictions (inclusion victims).
    pub back_invalidations: u64,
    /// Cycles demand L2 accesses spent queueing behind *other demand
    /// accesses* (bank conflicts; walk traffic yields to demands).
    pub l2_tag_contention_cycles: u64,
    /// Cycles replacement (walk/relocation) traffic waited for idle tag
    /// port cycles — the spare bandwidth §VI-D talks about.
    pub l2_walk_delay_cycles: u64,
}

impl SimStats {
    /// Aggregate IPC: instructions retired per wall-clock cycle (all
    /// cores together; the paper's 32-core machine peaks at 32).
    pub fn ipc(&self) -> f64 {
        if self.max_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.max_cycles as f64
        }
    }

    /// L2 misses per thousand instructions — the Fig. 4 metric.
    pub fn l2_mpki(&self) -> f64 {
        self.l2.mpki(self.instructions)
    }

    /// L1 misses per thousand instructions.
    pub fn l1_mpki(&self) -> f64 {
        self.l1.mpki(self.instructions)
    }

    /// Average L2 accesses per cycle per bank (§VI-D's "load").
    pub fn l2_load_per_bank(&self) -> f64 {
        if self.max_cycles == 0 || self.banks == 0 {
            0.0
        } else {
            self.l2.accesses as f64 / self.max_cycles as f64 / f64::from(self.banks)
        }
    }

    /// Average tag-array operations per cycle per bank (§VI-D's tag
    /// bandwidth; includes lookup, walk and relocation tag traffic).
    pub fn l2_tag_ops_per_cycle_per_bank(&self) -> f64 {
        if self.max_cycles == 0 || self.banks == 0 {
            0.0
        } else {
            (self.l2.tag_reads + self.l2.tag_writes) as f64
                / self.max_cycles as f64
                / f64::from(self.banks)
        }
    }

    /// L2 misses per cycle per bank.
    pub fn l2_misses_per_cycle_per_bank(&self) -> f64 {
        if self.max_cycles == 0 || self.banks == 0 {
            0.0
        } else {
            self.l2.misses as f64 / self.max_cycles as f64 / f64::from(self.banks)
        }
    }

    /// Event counts in the form the `zenergy` power model consumes.
    pub fn energy_counts(&self) -> EnergyCounts {
        EnergyCounts {
            instructions: self.instructions,
            cycles: self.max_cycles,
            l1_accesses: self.l1.accesses,
            l2_hits: self.l2.hits,
            l2_misses: self.l2.misses,
            l2_tag_reads: self.l2.tag_reads,
            l2_tag_writes: self.l2.tag_writes,
            l2_data_reads: self.l2.data_reads,
            l2_data_writes: self.l2.data_writes,
            mem_accesses: self.mem_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            instructions: 1_000_000,
            max_cycles: 500_000,
            cores: 32,
            banks: 8,
            l2: CacheStats {
                accesses: 40_000,
                misses: 10_000,
                tag_reads: 160_000,
                tag_writes: 10_000,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.l2_mpki() - 10.0).abs() < 1e-12);
        assert!((s.l2_load_per_bank() - 0.01).abs() < 1e-12);
        assert!((s.l2_tag_ops_per_cycle_per_bank() - 0.0425).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_run_is_all_zeros() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l2_load_per_bank(), 0.0);
        assert_eq!(s.l2_tag_ops_per_cycle_per_bank(), 0.0);
        assert_eq!(s.l2_misses_per_cycle_per_bank(), 0.0);
    }

    #[test]
    fn energy_counts_mirror_stats() {
        let s = SimStats {
            instructions: 10,
            max_cycles: 20,
            mem_accesses: 3,
            l1: CacheStats {
                accesses: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        let e = s.energy_counts();
        assert_eq!(e.instructions, 10);
        assert_eq!(e.cycles, 20);
        assert_eq!(e.l1_accesses, 5);
        assert_eq!(e.mem_accesses, 3);
    }
}
