//! Simulator configuration (the paper's Table I).

use zcache_core::{ArrayKind, PolicyKind};
use zenergy::{CacheDesign, LookupMode, OrgKind};
use zhash::HashKind;

/// The shared-L2 design under evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L2Design {
    /// Array organization.
    pub array: ArrayKind,
    /// Physical ways (ignored by `Fully`/`RandomCands`).
    pub ways: u32,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Tag/data lookup mode (drives latency/energy via `zenergy`).
    pub lookup: LookupMode,
}

impl L2Design {
    /// The paper's baseline: 4-way set-associative with H3 index hashing,
    /// serial lookup, LRU.
    pub fn baseline() -> Self {
        Self {
            array: ArrayKind::SetAssoc { hash: HashKind::H3 },
            ways: 4,
            policy: PolicyKind::Lru,
            lookup: LookupMode::Serial,
        }
    }

    /// A zcache design `Z<ways>/<R>` with the given walk depth.
    pub fn zcache(ways: u32, levels: u32) -> Self {
        Self {
            array: ArrayKind::ZCache { levels },
            ways,
            policy: PolicyKind::Lru,
            lookup: LookupMode::Serial,
        }
    }

    /// A set-associative design with H3 hashing and the given way count.
    pub fn setassoc(ways: u32) -> Self {
        Self {
            ways,
            ..Self::baseline()
        }
    }

    /// Returns this design with a different policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Returns this design with a different lookup mode.
    pub fn with_lookup(mut self, lookup: LookupMode) -> Self {
        self.lookup = lookup;
        self
    }

    /// A short label (`SA-4`, `Z4/52`, `skew-4`, …).
    pub fn label(&self) -> String {
        match self.array {
            ArrayKind::SetAssoc { .. } => format!("SA-{}", self.ways),
            ArrayKind::Skew => format!("skew-{}", self.ways),
            ArrayKind::ZCache { levels } => format!(
                "Z{}/{}",
                self.ways,
                zcache_core::replacement_candidates(self.ways, levels)
            ),
            ArrayKind::Fully => "fully".to_string(),
            ArrayKind::RandomCands { n } => format!("rand-{n}"),
        }
    }

    /// The physical-cost description of this design for a cache of
    /// `lines` total lines in `banks` banks.
    pub fn cache_design(&self, lines: u64, banks: u32) -> CacheDesign {
        let org = match self.array {
            ArrayKind::ZCache { levels } => OrgKind::ZCache { levels },
            // Skew caches have set-associative hit physics at their way
            // count; fully/random are analysis-only designs priced as
            // set-associative.
            _ => OrgKind::SetAssoc,
        };
        CacheDesign {
            size_bytes: lines * 64,
            line_bytes: 64,
            banks,
            ways: self.ways,
            org,
            lookup: self.lookup,
        }
    }
}

/// Full system configuration (Table I plus run-scaling knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Core count (paper: 32 in-order x86 cores, IPC = 1 except memory).
    pub cores: u32,
    /// Per-core L1 capacity in lines (paper: 32 KB / 64 B = 512).
    pub l1_lines: u64,
    /// L1 associativity (paper: 4).
    pub l1_ways: u32,
    /// Total L2 capacity in lines (paper: 8 MB / 64 B = 131072).
    pub l2_lines: u64,
    /// L2 bank count (paper: 8).
    pub l2_banks: u32,
    /// The L2 design under test.
    pub l2: L2Design,
    /// Average L1-to-L2-bank interconnect latency, cycles (paper: 4).
    pub l1_to_l2_latency: u32,
    /// Override for the L2 bank hit latency; `None` derives it from the
    /// `zenergy` cost model (6–11 cycles across Table II designs).
    pub l2_bank_latency: Option<u32>,
    /// Zero-load memory latency, cycles (paper: 200).
    pub mem_latency: u32,
    /// Memory controllers (paper: 4).
    pub mem_controllers: u32,
    /// Channel occupancy per 64-byte transfer, cycles (64 GB/s total at
    /// 2 GHz = 32 B/cycle = 4 cycles per line per controller).
    pub mem_cycles_per_transfer: u32,
    /// Penalty for a coherence action (invalidation round or dirty
    /// downgrade), cycles.
    pub coherence_penalty: u32,
    /// Instructions each core executes before the run ends.
    pub instrs_per_core: u64,
    /// Seed for hashes and randomized components.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's Table I machine with the baseline L2.
    pub fn paper() -> Self {
        Self {
            cores: 32,
            l1_lines: 512,
            l1_ways: 4,
            l2_lines: 131_072,
            l2_banks: 8,
            l2: L2Design::baseline(),
            l1_to_l2_latency: 4,
            l2_bank_latency: None,
            mem_latency: 200,
            mem_controllers: 4,
            mem_cycles_per_transfer: 4,
            coherence_penalty: 20,
            instrs_per_core: 1_000_000,
            seed: 1,
        }
    }

    /// A scaled-down machine (4 KB L1s, 1 MB L2) for fast experiments;
    /// matches [`zworkloads::suite::Scale::SMALL`].
    pub fn small() -> Self {
        Self {
            l1_lines: 64,
            l2_lines: 16_384,
            instrs_per_core: 200_000,
            ..Self::paper()
        }
    }

    /// Replaces the L2 design.
    pub fn with_l2(mut self, l2: L2Design) -> Self {
        self.l2 = l2;
        self
    }

    /// The effective L2 bank hit latency: the override if set, otherwise
    /// the `zenergy` model.
    pub fn effective_l2_latency(&self) -> u32 {
        self.l2_bank_latency.unwrap_or_else(|| {
            self.l2
                .cache_design(self.l2_lines, self.l2_banks)
                .cost()
                .hit_latency_cycles
        })
    }

    /// Lines per L2 bank.
    pub fn lines_per_bank(&self) -> u64 {
        self.l2_lines / u64::from(self.l2_banks)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = SimConfig::paper();
        assert_eq!(c.cores, 32);
        assert_eq!(c.l1_lines * 64, 32 * 1024);
        assert_eq!(c.l2_lines * 64, 8 * 1024 * 1024);
        assert_eq!(c.l2_banks, 8);
        assert_eq!(c.mem_latency, 200);
        assert_eq!(c.mem_controllers, 4);
    }

    #[test]
    fn labels() {
        assert_eq!(L2Design::baseline().label(), "SA-4");
        assert_eq!(L2Design::zcache(4, 3).label(), "Z4/52");
        assert_eq!(L2Design::zcache(4, 2).label(), "Z4/16");
        assert_eq!(L2Design::setassoc(32).label(), "SA-32");
    }

    #[test]
    fn effective_latency_in_range() {
        for design in [
            L2Design::baseline(),
            L2Design::setassoc(32),
            L2Design::zcache(4, 3),
            L2Design::zcache(4, 3).with_lookup(LookupMode::Parallel),
        ] {
            let c = SimConfig::paper().with_l2(design);
            let lat = c.effective_l2_latency();
            assert!((5..=12).contains(&lat), "{}: {lat}", c.l2.label());
        }
    }

    #[test]
    fn zcache_latency_beats_wide_sa() {
        let z = SimConfig::paper().with_l2(L2Design::zcache(4, 3));
        let sa = SimConfig::paper().with_l2(L2Design::setassoc(32));
        assert!(z.effective_l2_latency() < sa.effective_l2_latency());
    }

    #[test]
    fn override_latency_wins() {
        let mut c = SimConfig::paper();
        c.l2_bank_latency = Some(7);
        assert_eq!(c.effective_l2_latency(), 7);
    }
}
