//! L2 bank tag-port contention.
//!
//! §III of the paper: "the replacement process requires extra bandwidth,
//! especially on the tag array", but walks run *off the critical path* —
//! demand lookups have priority and replacement traffic fills the idle
//! port cycles ("replacements … can simply queue up", §III-C). The model
//! reflects that priority: demand accesses only queue behind other
//! demand accesses, while walk/relocation traffic is pushed into the
//! gaps and its queueing delay is tracked as a diagnostic — the §VI-D
//! self-throttling argument made measurable.

/// Per-bank tag-port occupancy tracker with demand priority.
#[derive(Debug, Clone)]
pub struct BankPorts {
    demand_free: Vec<u64>,
    background_free: Vec<u64>,
    demand_wait_cycles: u64,
    walk_delay_cycles: u64,
    ops: u64,
}

impl BankPorts {
    /// Creates trackers for `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    pub fn new(banks: u32) -> Self {
        assert!(banks > 0, "need at least one bank");
        Self {
            demand_free: vec![0; banks as usize],
            background_free: vec![0; banks as usize],
            demand_wait_cycles: 0,
            walk_delay_cycles: 0,
            ops: 0,
        }
    }

    /// A demand access arriving at `now`, needing one port cycle:
    /// returns the queueing delay (behind *other demand accesses* only —
    /// walks yield).
    #[inline]
    pub fn demand(&mut self, bank: usize, now: u64) -> u64 {
        let start = now.max(self.demand_free[bank]);
        let wait = start - now;
        self.demand_free[bank] = start + 1;
        // Preempted walk traffic resumes after the demand access.
        self.background_free[bank] = self.background_free[bank].max(start + 1);
        self.demand_wait_cycles += wait;
        self.ops += 1;
        wait
    }

    /// Walk/relocation traffic triggered at `now` occupying the port for
    /// `ops` cycles; runs in the idle cycles behind demand traffic and
    /// any earlier replacement, never stalling the requester.
    #[inline]
    pub fn background(&mut self, bank: usize, now: u64, ops: u32) {
        let start = now
            .max(self.background_free[bank])
            .max(self.demand_free[bank]);
        self.background_free[bank] = start + u64::from(ops);
        self.walk_delay_cycles += start - now;
        self.ops += u64::from(ops);
    }

    /// Cycles demand accesses spent waiting behind other demand accesses
    /// (bank conflicts between cores).
    pub fn contention_cycles(&self) -> u64 {
        self.demand_wait_cycles
    }

    /// Cycles replacement traffic was pushed back waiting for port
    /// idle time (the §VI-D "spare bandwidth" actually consumed late).
    pub fn walk_delay_cycles(&self) -> u64 {
        self.walk_delay_cycles
    }

    /// Total port operations issued.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_port_has_no_wait() {
        let mut p = BankPorts::new(2);
        assert_eq!(p.demand(0, 100), 0);
        assert_eq!(p.demand(1, 100), 0);
        assert_eq!(p.contention_cycles(), 0);
    }

    #[test]
    fn back_to_back_demands_queue() {
        let mut p = BankPorts::new(1);
        assert_eq!(p.demand(0, 10), 0);
        assert_eq!(p.demand(0, 10), 1);
        assert_eq!(p.demand(0, 10), 2);
        assert_eq!(p.contention_cycles(), 3);
    }

    #[test]
    fn walks_never_delay_demands() {
        let mut p = BankPorts::new(1);
        p.demand(0, 0);
        p.background(0, 0, 52); // a Z4/52 walk in flight
                                // A demand arriving mid-walk preempts it: no wait from the walk.
        assert_eq!(p.demand(0, 10), 0);
    }

    #[test]
    fn demands_push_walks_back() {
        let mut p = BankPorts::new(1);
        p.demand(0, 5); // port busy at cycle 5
        p.background(0, 3, 10);
        // The walk had to wait for the demand: start at 6, not 3.
        assert_eq!(p.walk_delay_cycles(), 3);
    }

    #[test]
    fn walks_queue_behind_walks() {
        let mut p = BankPorts::new(1);
        p.background(0, 0, 52);
        p.background(0, 10, 52);
        // Second replacement waits for the first (§III-C: "they can
        // simply queue up").
        assert_eq!(p.walk_delay_cycles(), 42);
    }

    #[test]
    fn banks_are_independent() {
        let mut p = BankPorts::new(2);
        p.background(0, 0, 100);
        p.demand(0, 5);
        assert_eq!(p.demand(1, 5), 0, "other bank unaffected");
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        BankPorts::new(0);
    }
}
