//! MESI-style directory kept alongside the inclusive L2.

use std::collections::HashMap;
use zcache_core::LineAddr;

/// Directory state for one L2-resident line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Bitmask of cores whose L1 may hold the line.
    pub sharers: u64,
    /// Core holding the line modified in its L1, if any.
    pub owner: Option<u32>,
}

impl DirEntry {
    /// Sharers other than `core`.
    pub fn other_sharers(&self, core: u32) -> u64 {
        self.sharers & !(1u64 << core)
    }
}

/// The full-map directory of the shared L2 (Table I: "MESI directory
/// coherence"). An entry exists exactly for lines resident in the L2
/// (inclusive hierarchy), tracking which L1s hold copies and which, if
/// any, holds the line modified.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<LineAddr, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a line's entry.
    pub fn get(&self, line: LineAddr) -> Option<DirEntry> {
        self.entries.get(&line).copied()
    }

    /// Registers a line on L2 fill, with `core` as its first sharer.
    pub fn insert(&mut self, line: LineAddr, core: u32, modified: bool) {
        self.entries.insert(
            line,
            DirEntry {
                sharers: 1 << core,
                owner: modified.then_some(core),
            },
        );
    }

    /// Adds a reader. Returns the previous dirty owner if it was a
    /// different core (which must then be downgraded).
    pub fn add_sharer(&mut self, line: LineAddr, core: u32) -> Option<u32> {
        let e = self.entries.entry(line).or_default();
        let prev_owner = e.owner.filter(|&o| o != core);
        if prev_owner.is_some() {
            e.owner = None; // downgraded to shared, L2 copy now up to date
        }
        e.sharers |= 1 << core;
        prev_owner
    }

    /// Makes `core` the exclusive modified owner. Returns the bitmask of
    /// other sharers that must be invalidated.
    pub fn make_owner(&mut self, line: LineAddr, core: u32) -> u64 {
        let e = self.entries.entry(line).or_default();
        let others = e.other_sharers(core);
        e.sharers = 1 << core;
        e.owner = Some(core);
        others
    }

    /// Drops `core` from a line's sharers (L1 eviction); clears ownership
    /// if `core` owned it.
    pub fn remove_sharer(&mut self, line: LineAddr, core: u32) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.sharers &= !(1u64 << core);
            if e.owner == Some(core) {
                e.owner = None;
            }
        }
    }

    /// Removes a line on L2 eviction, returning the sharer mask whose L1
    /// copies must be back-invalidated.
    pub fn remove(&mut self, line: LineAddr) -> u64 {
        self.entries.remove(&line).map(|e| e.sharers).unwrap_or(0)
    }

    /// Iterates all tracked lines and their entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, DirEntry)> + '_ {
        self.entries.iter().map(|(&l, &e)| (l, e))
    }

    /// Number of tracked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory tracks no lines.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Iterates the set cores in a sharer bitmask.
pub fn cores_in(mask: u64) -> impl Iterator<Item = u32> {
    (0..64u32).filter(move |c| mask & (1 << c) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_share() {
        let mut d = Directory::new();
        d.insert(10, 0, false);
        assert_eq!(d.add_sharer(10, 1), None);
        let e = d.get(10).unwrap();
        assert_eq!(e.sharers, 0b11);
        assert_eq!(e.owner, None);
    }

    #[test]
    fn read_of_modified_line_downgrades_owner() {
        let mut d = Directory::new();
        d.insert(10, 2, true);
        assert_eq!(d.add_sharer(10, 5), Some(2));
        let e = d.get(10).unwrap();
        assert_eq!(e.owner, None);
        assert_eq!(e.sharers, (1 << 2) | (1 << 5));
        // Owner re-reading its own line needs no downgrade.
        d.insert(11, 3, true);
        assert_eq!(d.add_sharer(11, 3), None);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = Directory::new();
        d.insert(10, 0, false);
        d.add_sharer(10, 1);
        d.add_sharer(10, 2);
        let to_invalidate = d.make_owner(10, 1);
        assert_eq!(to_invalidate, (1 << 0) | (1 << 2));
        let e = d.get(10).unwrap();
        assert_eq!(e.sharers, 1 << 1);
        assert_eq!(e.owner, Some(1));
    }

    #[test]
    fn remove_sharer_clears_ownership() {
        let mut d = Directory::new();
        d.insert(7, 4, true);
        d.remove_sharer(7, 4);
        let e = d.get(7).unwrap();
        assert_eq!(e.sharers, 0);
        assert_eq!(e.owner, None);
    }

    #[test]
    fn remove_returns_back_invalidation_mask() {
        let mut d = Directory::new();
        d.insert(9, 0, false);
        d.add_sharer(9, 3);
        assert_eq!(d.remove(9), 0b1001);
        assert_eq!(d.remove(9), 0);
        assert!(d.is_empty());
    }

    #[test]
    fn cores_in_mask() {
        let v: Vec<u32> = cores_in(0b1010_0001).collect();
        assert_eq!(v, vec![0, 5, 7]);
    }
}
