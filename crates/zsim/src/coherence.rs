//! MESI-style directory kept alongside the inclusive L2.

use zcache_core::{LineAddr, SeededMap};

/// Directory state for one L2-resident line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Bitmask of cores whose L1 may hold the line.
    pub sharers: u64,
    /// Core holding the line modified in its L1, if any.
    pub owner: Option<u32>,
}

impl DirEntry {
    /// Sharers other than `core`.
    pub fn other_sharers(&self, core: u32) -> u64 {
        self.sharers & !(1u64 << core)
    }
}

/// The full-map directory of the shared L2 (Table I: "MESI directory
/// coherence"). An entry exists exactly for lines resident in the L2
/// (inclusive hierarchy), tracking which L1s hold copies and which, if
/// any, holds the line modified.
///
/// Entries live in a seeded open-addressing [`SeededMap`] rather than a
/// std `HashMap`: directory get/insert/remove sit on the per-access hot
/// path of [`System::access`](crate::System::access), where SipHash plus
/// `RandomState`'s per-process seeding cost both throughput and
/// reproducibility. Sized via [`with_capacity`](Self::with_capacity) to
/// the L2's line count, the map never rehashes during simulation.
#[derive(Debug, Clone)]
pub struct Directory {
    entries: SeededMap<DirEntry>,
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Directory {
    /// Fixed seed salt for the directory table. The layout never leaks
    /// (iteration sorts), so one constant serves every configuration.
    const SEED_SALT: u64 = 0xd19_0c7e_u64;

    /// Creates an empty directory with a small default capacity (grows
    /// deterministically as needed).
    pub fn new() -> Self {
        Self::with_capacity(64, 0)
    }

    /// Creates an empty directory pre-sized for an L2 of `lines` frames.
    ///
    /// `lines + 1` entries fit without growth: on an L2 miss the new
    /// line is registered before the inclusion victim is removed, so the
    /// directory transiently holds one entry more than the L2 has
    /// frames.
    pub fn with_capacity(lines: usize, seed: u64) -> Self {
        Self {
            entries: SeededMap::with_capacity(lines + 1, seed ^ Self::SEED_SALT),
        }
    }

    /// Looks up a line's entry.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<DirEntry> {
        self.entries.get(line)
    }

    /// Registers a line on L2 fill, with `core` as its first sharer.
    #[inline]
    pub fn insert(&mut self, line: LineAddr, core: u32, modified: bool) {
        self.entries.insert(
            line,
            DirEntry {
                sharers: 1 << core,
                owner: modified.then_some(core),
            },
        );
    }

    /// Adds a reader. Returns the previous dirty owner if it was a
    /// different core (which must then be downgraded).
    #[inline]
    pub fn add_sharer(&mut self, line: LineAddr, core: u32) -> Option<u32> {
        let (e, _) = self.entries.get_or_insert_with(line, DirEntry::default);
        let prev_owner = e.owner.filter(|&o| o != core);
        if prev_owner.is_some() {
            e.owner = None; // downgraded to shared, L2 copy now up to date
        }
        e.sharers |= 1 << core;
        prev_owner
    }

    /// Makes `core` the exclusive modified owner. Returns the bitmask of
    /// other sharers that must be invalidated.
    #[inline]
    pub fn make_owner(&mut self, line: LineAddr, core: u32) -> u64 {
        let (e, _) = self.entries.get_or_insert_with(line, DirEntry::default);
        let others = e.other_sharers(core);
        e.sharers = 1 << core;
        e.owner = Some(core);
        others
    }

    /// Drops `core` from a line's sharers (L1 eviction); clears ownership
    /// if `core` owned it.
    #[inline]
    pub fn remove_sharer(&mut self, line: LineAddr, core: u32) {
        if let Some(e) = self.entries.get_mut(line) {
            e.sharers &= !(1u64 << core);
            if e.owner == Some(core) {
                e.owner = None;
            }
        }
    }

    /// Removes a line on L2 eviction, returning the sharer mask whose L1
    /// copies must be back-invalidated.
    #[inline]
    pub fn remove(&mut self, line: LineAddr) -> u64 {
        self.entries.remove(line).map(|e| e.sharers).unwrap_or(0)
    }

    /// Iterates all tracked lines and their entries in ascending line
    /// address order.
    ///
    /// The order is *canonical*, not the table's internal layout, so
    /// MESI invariant walks and state digests are identical across
    /// seeds, capacities, and the exact insert/remove history that
    /// produced the contents. Allocates a sorted snapshot — this is an
    /// inspection API, not a hot path.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, DirEntry)> {
        let mut v: Vec<(LineAddr, DirEntry)> = self.entries.iter().collect();
        v.sort_unstable_by_key(|&(line, _)| line);
        v.into_iter()
    }

    /// Number of tracked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory tracks no lines.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Iterates the set cores in a sharer bitmask.
pub fn cores_in(mask: u64) -> impl Iterator<Item = u32> {
    (0..64u32).filter(move |c| mask & (1 << c) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_share() {
        let mut d = Directory::new();
        d.insert(10, 0, false);
        assert_eq!(d.add_sharer(10, 1), None);
        let e = d.get(10).unwrap();
        assert_eq!(e.sharers, 0b11);
        assert_eq!(e.owner, None);
    }

    #[test]
    fn read_of_modified_line_downgrades_owner() {
        let mut d = Directory::new();
        d.insert(10, 2, true);
        assert_eq!(d.add_sharer(10, 5), Some(2));
        let e = d.get(10).unwrap();
        assert_eq!(e.owner, None);
        assert_eq!(e.sharers, (1 << 2) | (1 << 5));
        // Owner re-reading its own line needs no downgrade.
        d.insert(11, 3, true);
        assert_eq!(d.add_sharer(11, 3), None);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = Directory::new();
        d.insert(10, 0, false);
        d.add_sharer(10, 1);
        d.add_sharer(10, 2);
        let to_invalidate = d.make_owner(10, 1);
        assert_eq!(to_invalidate, (1 << 0) | (1 << 2));
        let e = d.get(10).unwrap();
        assert_eq!(e.sharers, 1 << 1);
        assert_eq!(e.owner, Some(1));
    }

    #[test]
    fn remove_sharer_clears_ownership() {
        let mut d = Directory::new();
        d.insert(7, 4, true);
        d.remove_sharer(7, 4);
        let e = d.get(7).unwrap();
        assert_eq!(e.sharers, 0);
        assert_eq!(e.owner, None);
    }

    #[test]
    fn remove_returns_back_invalidation_mask() {
        let mut d = Directory::new();
        d.insert(9, 0, false);
        d.add_sharer(9, 3);
        assert_eq!(d.remove(9), 0b1001);
        assert_eq!(d.remove(9), 0);
        assert!(d.is_empty());
    }

    #[test]
    fn iter_is_sorted_and_layout_independent() {
        // Same contents via different histories and different seeds must
        // iterate identically: ascending line order, nothing else.
        let mut a = Directory::with_capacity(64, 1);
        let mut b = Directory::with_capacity(1024, 99);
        for line in [900u64, 3, 512, 77, 41, 600] {
            a.insert(line, 0, false);
        }
        for line in [41u64, 600, 3, 900, 512, 77, 1000] {
            b.insert(line, 0, false);
        }
        b.remove(1000);
        let va: Vec<_> = a.iter().collect();
        let vb: Vec<_> = b.iter().collect();
        assert_eq!(va, vb);
        assert!(va.windows(2).all(|w| w[0].0 < w[1].0), "sorted by line");
    }

    #[test]
    fn iter_identical_across_identically_seeded_runs() {
        // Regression for the open-addressing swap: two runs with the
        // same seed and history iterate in exactly the same order.
        let build = || {
            let mut d = Directory::with_capacity(128, 7);
            let mut x = 0xdead_beefu64;
            for step in 0..500u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let line = x % 256;
                match step % 4 {
                    0 => d.insert(line, (step % 8) as u32, step % 2 == 0),
                    1 => {
                        d.add_sharer(line, (step % 8) as u32);
                    }
                    2 => {
                        d.remove(line);
                    }
                    _ => d.remove_sharer(line, (step % 8) as u32),
                }
            }
            d.iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn cores_in_mask() {
        let v: Vec<u32> = cores_in(0b1010_0001).collect();
        assert_eq!(v, vec![0, 5, 7]);
    }
}
