//! End-of-run MESI directory invariants, checked against the live L1/L2
//! state of the simulated machine, plus bank-port contention accounting.
//!
//! The directory tests drive write-sharing workloads (the worst case for
//! MESI) through both the set-associative baseline and the Z4/52 zcache,
//! then walk the final machine state: the invariants must hold for any
//! L2 organization, since coherence is decoupled from the array.

use zsim::{cores_in, L2Design, SimConfig, System};
use zworkloads::suite::{by_name, Scale};
use zworkloads::{Component, CoreSpec, Workload};

fn tiny_cfg() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.cores = 4;
    cfg.instrs_per_core = 20_000;
    cfg
}

/// All four cores hammer a small shared region with a 50% write ratio:
/// maximal invalidation/downgrade churn.
fn sharing_workload() -> Workload {
    Workload::multithreaded(
        "pingpong",
        CoreSpec::new(vec![(1.0, Component::SharedUniform { lines: 32 })], 0.5, 4),
    )
}

/// Walks the final machine state and asserts the MESI safety invariants:
///
/// 1. A line with a modified owner has no other sharers (so no two L1s
///    can ever hold the same line writable).
/// 2. L1 residency is a subset of the directory's sharer mask (the
///    directory never loses track of a cached copy).
/// 3. Inclusion: every L1-resident line is also L2-resident.
fn assert_mesi_invariants(sys: &System) {
    let mut checked_lines = 0usize;
    for (line, entry) in sys.directory().iter() {
        if let Some(owner) = entry.owner {
            assert_eq!(
                entry.sharers,
                1u64 << owner,
                "line {line:#x}: modified owner {owner} coexists with sharers {:#b}",
                entry.sharers
            );
        }
        checked_lines += 1;
    }
    assert!(checked_lines > 0, "directory empty: test exercised nothing");

    for (core, l1) in sys.l1s().iter().enumerate() {
        let mut resident = Vec::new();
        l1.for_each_resident(&mut |line| resident.push(line));
        for line in resident {
            let entry = sys
                .directory()
                .get(line)
                .unwrap_or_else(|| panic!("L1 {core} holds {line:#x} untracked by directory"));
            assert!(
                entry.sharers & (1u64 << core) != 0,
                "L1 {core} holds {line:#x} but is not in sharer mask {:#b}",
                entry.sharers
            );
            let bank = sys.bank_index(line);
            assert!(
                sys.banks()[bank].contains(line),
                "inclusion violated: L1 {core} holds {line:#x}, L2 bank {bank} does not"
            );
        }
    }
}

#[test]
fn mesi_invariants_hold_on_baseline() {
    let mut sys = System::new(tiny_cfg());
    let stats = sys.run(&sharing_workload());
    assert!(stats.invalidation_rounds > 0, "sharing must invalidate");
    assert_mesi_invariants(&sys);
}

#[test]
fn mesi_invariants_hold_on_zcache() {
    // Relocations move lines between slots without touching the
    // directory; the invariants must survive heavy walk traffic. The
    // shared footprint (40k lines) overflows the 16k-line SMALL L2 so
    // walks and back-invalidations actually happen.
    let wl = Workload::multithreaded(
        "pingpong-big",
        CoreSpec::new(
            vec![
                (0.4, Component::SharedUniform { lines: 32 }),
                (0.6, Component::SharedUniform { lines: 40_000 }),
            ],
            0.5,
            4,
        ),
    );
    let mut sys = System::new(tiny_cfg().with_l2(L2Design::zcache(4, 3)));
    let stats = sys.run(&wl);
    assert!(stats.l2.relocations > 0, "zcache must relocate");
    assert!(stats.invalidation_rounds > 0, "sharing must invalidate");
    assert_mesi_invariants(&sys);
}

#[test]
fn downgrade_writes_back_through_l2() {
    // A read of another core's modified line downgrades the owner and
    // pulls the dirty data through the L2, which must show up in the
    // L2 data-write counters — downgraded data is never silently lost.
    let mut sys = System::new(tiny_cfg());
    let stats = sys.run(&sharing_workload());
    assert!(stats.downgrades > 0, "read-after-write must downgrade");
    assert!(
        stats.l2.data_writes >= stats.downgrades,
        "each downgrade must write data into the L2: {} writes < {} downgrades",
        stats.l2.data_writes,
        stats.downgrades
    );
}

#[test]
fn sharer_mask_iteration_matches_cores() {
    // cores_in must enumerate exactly the set bits the invariant checks
    // rely on, including core 63 (the top of the mask).
    let mask = (1u64 << 0) | (1u64 << 31) | (1u64 << 63);
    let got: Vec<u32> = cores_in(mask).collect();
    assert_eq!(got, vec![0, 31, 63]);
}

#[test]
fn fewer_banks_mean_more_demand_contention() {
    // Bank-port accounting: squeezing the same miss traffic through one
    // bank must queue demand accesses behind each other, while the
    // 8-bank default spreads them out. Uses a miss-heavy workload so
    // the L2 actually sees traffic.
    let wl = by_name("canneal", 4, Scale::SMALL).unwrap();
    let mut cfg1 = tiny_cfg();
    cfg1.l2_banks = 1;
    let one = System::new(cfg1).run(&wl);
    let eight = System::new(tiny_cfg()).run(&wl);
    assert!(
        one.l2_tag_contention_cycles > eight.l2_tag_contention_cycles,
        "1 bank {} cycles vs 8 banks {} cycles",
        one.l2_tag_contention_cycles,
        eight.l2_tag_contention_cycles
    );
    assert!(
        one.l2_tag_contention_cycles > 0,
        "single-bank run must show demand contention"
    );
}

#[test]
fn walk_traffic_is_accounted_off_the_critical_path() {
    // Zcache walks consume port cycles as *background* traffic: tag
    // bandwidth grows with walk depth, the background queue absorbs the
    // extra ops, and demand contention stays negligible.
    let wl = by_name("canneal", 4, Scale::SMALL).unwrap();
    let sa = System::new(tiny_cfg()).run(&wl);
    let z = System::new(tiny_cfg().with_l2(L2Design::zcache(4, 3))).run(&wl);
    let sa_tag_ops = sa.l2.tag_reads + sa.l2.tag_writes;
    let z_tag_ops = z.l2.tag_reads + z.l2.tag_writes;
    assert!(
        z_tag_ops > sa_tag_ops,
        "Z4/52 must spend more tag bandwidth than SA-4: {z_tag_ops} vs {sa_tag_ops}"
    );
    assert!(
        z.l2_walk_delay_cycles > 0,
        "walks must queue into idle cycles"
    );
    let frac = z.l2_tag_contention_cycles as f64 / z.max_cycles as f64;
    assert!(
        frac < 0.05,
        "walks must not inflate demand contention: {frac}"
    );
}
