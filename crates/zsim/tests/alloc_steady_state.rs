//! Steady-state allocation audit for the full zsim access chain.
//!
//! `System::access` (L1 → MESI directory → banked L2 → bank ports →
//! memory channels) is the execution-mode inner loop; after warm-up it
//! must not touch the heap. The L1/L2 access engines reuse their walk
//! buffers (PR 2/4), the directory is a pre-sized seeded open-addressing
//! table, and ports/memory are fixed arrays — a counting global
//! allocator makes that a hard test rather than a bench note.

use std::alloc::{GlobalAlloc, Layout, System as SysAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use zsim::{L2Design, SimConfig, System};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SysAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Drives `steps` references through the system: every core touches a
/// mix of private-chase misses (L2 fills + inclusion victims + memory),
/// shared lines (directory up/downgrades, invalidation rounds) and
/// writes — the whole access chain, not just the happy path.
fn drive(sys: &mut System, seed: u64, steps: u64) {
    let cores = sys.config().cores;
    let mut x = seed | 1;
    let mut now = 0u64;
    for i in 0..steps {
        // xorshift64 address variety over a footprint far beyond the L2.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let core = (i % u64::from(cores)) as u32;
        let shared = x.is_multiple_of(8);
        let line = if shared {
            0x5_0000 + (x >> 8) % 64
        } else {
            (u64::from(core) << 32) | ((x >> 8) % 200_000)
        };
        let write = x.is_multiple_of(4);
        now += 1 + sys.access(core, line, write, u64::MAX, now);
    }
}

fn assert_steady(design: L2Design, label: &str) {
    let mut cfg = SimConfig::small();
    cfg.cores = 4;
    let mut sys = System::new(cfg.with_l2(design));
    // Warm-up: fill both cache levels and the directory, let every
    // reusable buffer reach its steady-state capacity.
    drive(&mut sys, 0x9e37_79b9, 60_000);
    // Steady state: fresh addresses, misses, evictions, coherence.
    let before = ALLOCS.load(Ordering::Relaxed);
    drive(&mut sys, 0x51ed_2701, 30_000);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "{label}: steady-state System::access allocated {} time(s)",
        after - before
    );
}

#[test]
fn setassoc_system_access_is_allocation_free() {
    assert_steady(L2Design::setassoc(4), "SA-4");
}

#[test]
fn zcache_system_access_is_allocation_free() {
    assert_steady(L2Design::zcache(4, 3), "Z4/52");
}
